"""Solver settings, mirroring OSQP's defaults where the paper relies on them.

Two first-order algorithms share one settings vocabulary:

* :class:`OSQPSettings` — the ADMM path (Algorithm 1 of the paper);
* :class:`PDQPSettings` — restarted accelerated PDHG
  (:mod:`repro.solver.pdqp`).

Both inherit the termination / iteration-budget / scaling fields and
their validation from :class:`SolverSettings`, so ``eps_abs`` /
``eps_rel`` / ``max_iter`` mean exactly the same thing regardless of
which algorithm runs — the contract the serving layer's per-structure
algorithm selection relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolverSettings", "OSQPSettings", "PDQPSettings"]

#: Bounds on the ADMM step size, as in OSQP.
RHO_MIN = 1e-6
RHO_MAX = 1e6
#: Multiplier applied to rho on equality-constraint rows.
RHO_EQ_FACTOR = 1e3
#: Bounds on the PDHG primal weight (sigma/tau balance).
OMEGA_MIN = 1e-4
OMEGA_MAX = 1e4


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass
class SolverSettings:
    """Algorithm-independent solver settings (termination + scaling).

    Attributes
    ----------
    max_iter:
        Outer-iteration budget.
    time_limit:
        Wall-clock budget in seconds (0 disables).
    eps_abs, eps_rel:
        Absolute / relative termination tolerances on the unscaled KKT
        residuals; shared verbatim by every algorithm.
    scaling:
        Number of Ruiz equilibration iterations (0 disables scaling).
    scaled_termination:
        Check residuals on the scaled iterates (cheaper, less exact).
    check_termination:
        Residuals are evaluated every this many iterations.
    record_history:
        Keep ``(iteration, pri_res, dua_res, step)`` tuples at every
        termination check in ``info.history``.
    extra:
        Free-form escape hatch for experiment configuration.
    """

    max_iter: int = 4000
    time_limit: float = 0.0  # seconds; 0 disables
    eps_abs: float = 1e-3
    eps_rel: float = 1e-3
    scaling: int = 10
    scaled_termination: bool = False
    check_termination: int = 25
    record_history: bool = False
    verbose: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(self.max_iter >= 1, "max_iter must be at least 1")
        _require(self.time_limit >= 0, "time_limit must be non-negative")
        _require(self.eps_abs >= 0 and self.eps_rel >= 0,
                 "tolerances must be non-negative")
        _require(self.eps_abs > 0 or self.eps_rel > 0,
                 "eps_abs and eps_rel cannot both be zero")
        _require(self.check_termination >= 1,
                 "check_termination must be at least 1")
        _require(self.scaling >= 0, "scaling must be non-negative")


@dataclass
class OSQPSettings(SolverSettings):
    """Settings for :class:`repro.solver.OSQPSolver`.

    Defaults follow OSQP v1.0: ``alpha = 1.6``, ``sigma = 1e-6``,
    ``rho = 0.1`` with per-row adjustment for equality constraints.

    Attributes
    ----------
    linsys:
        ``"pcg"`` for the indirect backend the paper accelerates, or
        ``"ldl"`` for the direct QDLDL-style backend.
    adaptive_rho_interval:
        Iterations between step-size adaptations (0 disables).
    pcg_adaptive:
        Tie the inner PCG tolerance to the outer ADMM residuals
        (inexact-ADMM schedule, as cuOSQP does).
    polish:
        Attempt an active-set polish after convergence.
    """

    rho: float = 0.1
    sigma: float = 1e-6
    alpha: float = 1.6
    eps_prim_inf: float = 1e-4
    eps_dual_inf: float = 1e-4
    adaptive_rho: bool = True
    adaptive_rho_interval: int = 50
    adaptive_rho_tolerance: float = 5.0
    linsys: str = "pcg"
    ordering: str = "auto"
    pcg_eps: float = 1e-5
    pcg_eps_min: float = 1e-10
    pcg_eps_factor: float = 0.15
    pcg_decay: float = 0.35
    pcg_adaptive: bool = True
    pcg_max_iter: int = 5000
    polish: bool = False
    polish_delta: float = 1e-6
    polish_refine_iter: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.rho > 0, "rho must be positive")
        _require(self.sigma > 0, "sigma must be positive")
        _require(0.0 < self.alpha < 2.0, "alpha must lie in (0, 2)")
        _require(self.eps_prim_inf > 0,
                 "eps_prim_inf must be positive")
        _require(self.eps_dual_inf > 0,
                 "eps_dual_inf must be positive")
        _require(self.adaptive_rho_interval >= 0,
                 "adaptive_rho_interval must be non-negative")
        _require(self.adaptive_rho_tolerance >= 1.0,
                 "adaptive_rho_tolerance must be at least 1")
        if self.linsys not in ("pcg", "ldl"):
            raise ValueError("linsys must be 'pcg' or 'ldl'")
        if self.ordering not in ("auto", "natural", "mindeg"):
            raise ValueError("ordering must be 'auto', 'natural' or 'mindeg'")
        _require(self.pcg_eps > 0, "pcg_eps must be positive")
        _require(self.pcg_eps_min > 0, "pcg_eps_min must be positive")
        _require(self.pcg_max_iter >= 1, "pcg_max_iter must be at least 1")
        _require(self.polish_delta > 0, "polish_delta must be positive")
        _require(self.polish_refine_iter >= 0,
                 "polish_refine_iter must be non-negative")


@dataclass
class PDQPSettings(SolverSettings):
    """Settings for :class:`repro.solver.pdqp.PDQPSolver`.

    The termination fields (``eps_abs``/``eps_rel``/``max_iter``/...)
    come from :class:`SolverSettings` and keep the OSQP convention.
    PDHG typically needs more (much cheaper) iterations than ADMM, so
    the default ``max_iter`` is higher.

    Attributes
    ----------
    omega:
        Initial primal weight: ``sigma = omega / ||A||`` and
        ``tau = tau_scale / (omega ||A|| + lambda_max(P))``.
    tau_scale:
        Safety factor keeping the Condat-Vu step-size condition
        strictly satisfied.
    restart:
        ``"adaptive"`` (sufficient-decay, PDLP style), ``"fixed"``
        (every ``restart_interval`` iterations) or ``"none"``.
    restart_interval:
        Fixed restart period; also the cap between adaptive restarts
        and the accelerator's segment length.
    restart_beta:
        Adaptive restarts fire when the normalized KKT residual has
        decayed below ``restart_beta`` times its value at the last
        restart.
    omega_adaptive:
        Rebalance the primal weight from the primal/dual residual
        ratio at restarts (the PDHG analogue of adaptive rho).
    omega_tolerance:
        Rebalance only when the new estimate differs from the current
        weight by more than this factor (avoids churn).
    power_iterations:
        Host-side power-iteration count for the ``||A||`` and
        ``lambda_max(P)`` step-size estimates.
    """

    max_iter: int = 20000
    omega: float = 1.0
    tau_scale: float = 0.9
    restart: str = "adaptive"
    restart_interval: int = 100
    restart_beta: float = 0.25
    omega_adaptive: bool = True
    omega_tolerance: float = 5.0
    power_iterations: int = 50

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.omega > 0, "omega must be positive")
        _require(0.0 < self.tau_scale <= 1.0,
                 "tau_scale must lie in (0, 1]")
        if self.restart not in ("adaptive", "fixed", "none"):
            raise ValueError(
                "restart must be 'adaptive', 'fixed' or 'none'")
        _require(self.restart_interval >= 1,
                 "restart_interval must be at least 1")
        _require(0.0 < self.restart_beta < 1.0,
                 "restart_beta must lie in (0, 1)")
        _require(self.omega_tolerance >= 1.0,
                 "omega_tolerance must be at least 1")
        _require(self.power_iterations >= 1,
                 "power_iterations must be at least 1")
