"""Solver status codes and result containers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SolverStatus", "SolverInfo", "OSQPResult", "SolverResult",
           "TERMINATION_REASONS"]

#: Uniform termination-reason vocabulary shared by the reference
#: solvers (:class:`OSQPResult`) and the accelerator results
#: (:class:`repro.hw.accelerator.RSQPResult`). Every ``.termination_reason``
#: is one of these strings.
TERMINATION_REASONS = ("converged", "converged_inaccurate",
                       "max_iterations", "time_limit",
                       "primal_infeasible", "dual_infeasible")


class SolverStatus(enum.Enum):
    """Terminal state of a solve, mirroring OSQP's status set."""

    SOLVED = "solved"
    SOLVED_INACCURATE = "solved inaccurate"
    MAX_ITER_REACHED = "maximum iterations reached"
    TIME_LIMIT_REACHED = "time limit reached"
    PRIMAL_INFEASIBLE = "primal infeasible"
    DUAL_INFEASIBLE = "dual infeasible"

    @property
    def is_optimal(self) -> bool:
        return self in (SolverStatus.SOLVED, SolverStatus.SOLVED_INACCURATE)

    @property
    def reason(self) -> str:
        """The status as one of :data:`TERMINATION_REASONS`."""
        return _STATUS_REASONS[self]


_STATUS_REASONS = {
    SolverStatus.SOLVED: "converged",
    SolverStatus.SOLVED_INACCURATE: "converged_inaccurate",
    SolverStatus.MAX_ITER_REACHED: "max_iterations",
    SolverStatus.TIME_LIMIT_REACHED: "time_limit",
    SolverStatus.PRIMAL_INFEASIBLE: "primal_infeasible",
    SolverStatus.DUAL_INFEASIBLE: "dual_infeasible",
}


@dataclass
class SolverInfo:
    """Run statistics — also the input to the performance models.

    The CPU/GPU/FPGA timing models in :mod:`repro.baselines` and
    :mod:`repro.hw` consume the iteration counts recorded here, so the
    modeled end-to-end times are grounded in real solves.
    """

    iterations: int = 0
    pcg_iterations: int = 0
    pcg_per_admm: list = field(default_factory=list)
    rho_updates: int = 0
    rho_final: float = 0.0
    #: PDQP bookkeeping: restarts performed and primal-weight updates.
    restarts: int = 0
    omega_updates: int = 0
    pri_res: float = np.inf
    dua_res: float = np.inf
    obj_val: float = np.nan
    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    polished: bool = False
    #: (iteration, pri_res, dua_res, rho) tuples recorded at every
    #: termination check when settings.record_history is on.
    history: list = field(default_factory=list)


@dataclass
class OSQPResult:
    """Solution triple plus status and statistics.

    Shared by every reference algorithm (ADMM and PDQP) — the alias
    :data:`SolverResult` names the algorithm-neutral role. The
    ``status`` / ``iterations`` / ``termination_reason`` trio matches
    :class:`repro.hw.accelerator.RSQPResult`, so callers can treat
    reference and accelerator results uniformly.
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    status: SolverStatus
    info: SolverInfo
    # Infeasibility certificates (populated only for infeasible statuses).
    prim_inf_cert: np.ndarray | None = None
    dual_inf_cert: np.ndarray | None = None

    @property
    def iterations(self) -> int:
        """Outer iterations of the run (uniform result surface)."""
        return self.info.iterations

    @property
    def converged(self) -> bool:
        """Whether the run terminated at an (possibly inaccurate)
        optimum — the accelerator results' vocabulary."""
        return self.status.is_optimal

    @property
    def termination_reason(self) -> str:
        """One of :data:`TERMINATION_REASONS`."""
        return self.status.reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OSQPResult(status={self.status.value!r}, "
                f"iters={self.info.iterations}, obj={self.info.obj_val:.6g})")


#: Algorithm-neutral alias: both reference solvers return this type.
SolverResult = OSQPResult
