"""The OSQP ADMM solver (Algorithm 1 of the paper), from scratch.

The solver operates on a Ruiz-equilibrated copy of the problem, checks
termination on *unscaled* residuals, adapts the step size ``rho``, and
detects primal/dual infeasibility from the iterate differences — the
same loop the RSQP hardware executes, which is why the compiled
instruction stream in :mod:`repro.hw.compiler` mirrors this file.
"""

from __future__ import annotations

import time

import numpy as np

from ..qp import QProblem, ruiz_equilibrate
from .algorithms import SolverAlgorithm, register_algorithm
from .infeasibility import is_dual_infeasible, is_primal_infeasible
from .linsys import make_backend
from .polish import polish
from .results import OSQPResult, SolverInfo, SolverStatus
from .settings import RHO_EQ_FACTOR, RHO_MAX, RHO_MIN, OSQPSettings

__all__ = ["OSQPSolver", "solve", "ADMMAlgorithm"]

#: Residuals within this factor of the tolerance at max_iter still count
#: as an (inaccurate) solution.
_INACCURATE_FACTOR = 10.0
_DIV_GUARD = 1e-15


class OSQPSolver:
    """Reusable solver object: setup once, solve (and re-solve) many times.

    Parameters
    ----------
    problem:
        The QP to solve.
    settings:
        Optional :class:`OSQPSettings`; defaults follow OSQP.

    Examples
    --------
    >>> from repro.sparse import CSRMatrix
    >>> from repro.qp import QProblem
    >>> p = QProblem(P=CSRMatrix.from_dense([[2.0]]), q=[1.0],
    ...              A=CSRMatrix.from_dense([[1.0]]), l=[-1.0], u=[1.0])
    >>> result = OSQPSolver(p).solve()
    >>> result.status.is_optimal
    True
    """

    def __init__(self, problem: QProblem,
                 settings: OSQPSettings | None = None,
                 *, scaling=None):
        t0 = time.perf_counter()
        self.problem = problem
        self.settings = settings if settings is not None else OSQPSettings()
        # ``scaling`` accepts a precomputed Scaling for this problem
        # (the batched setup path equilibrates all lanes in one
        # vectorized pass, bit-identical to the solo call below).
        self.scaling = (scaling if scaling is not None
                        else ruiz_equilibrate(problem, self.settings.scaling))
        self.work = self.scaling.problem
        self.rho = float(self.settings.rho)
        self.rho_vec = self._build_rho_vec(self.rho)
        self.at = self.work.A.transpose()
        self._backend = None
        n, m = problem.n, problem.m
        self.x = np.zeros(n)
        self.z = np.zeros(m)
        self.y = np.zeros(m)
        self._setup_seconds = time.perf_counter() - t0

    @property
    def backend(self):
        """Linear-system backend, built on first use.

        Lazy because the accelerators borrow this class purely for
        host setup (scaling, rho selection) and never solve the KKT
        system in software — constructing the operator there would be
        pure overhead, paid B times per batched solve.
        """
        if self._backend is None:
            self._backend = make_backend(self.work.P, self.work.A,
                                         self.work.q, self.settings,
                                         self.rho_vec,
                                         a_transpose=self.at)
        return self._backend

    # ------------------------------------------------------------------
    def _build_rho_vec(self, rho: float) -> np.ndarray:
        """Per-constraint step size: stiffer on equalities, soft on free rows."""
        rho = float(np.clip(rho, RHO_MIN, RHO_MAX))
        vec = np.full(self.work.m, rho)
        eq = self.work.equality_mask()
        vec[eq] = np.clip(rho * RHO_EQ_FACTOR, RHO_MIN, RHO_MAX)
        loose = np.isneginf(self.work.l) & np.isposinf(self.work.u)
        vec[loose] = RHO_MIN
        return vec

    def warm_start(self, x=None, y=None) -> None:
        """Provide initial iterates in the *original* (unscaled) space."""
        if x is not None:
            x = np.asarray(x, dtype=np.float64)
            self.x = self.scaling.scale_x(x)
            self.z = self.work.A.matvec(self.x)
        if y is not None:
            y = np.asarray(y, dtype=np.float64)
            self.y = self.scaling.scale_y(y)

    def update_rho(self, rho: float) -> None:
        """Install a new step size (refactorize / refresh the operator)."""
        self.rho = float(np.clip(rho, RHO_MIN, RHO_MAX))
        self.rho_vec = self._build_rho_vec(self.rho)
        self.backend.update_rho(self.rho_vec)

    def update(self, q=None, l=None, u=None) -> None:
        """Update problem vectors in place (parametric re-solve).

        Matches OSQP's ``update`` API: the matrices (and therefore any
        problem-specific accelerator built for their sparsity) stay
        fixed while the cost vector and/or bounds change between
        solves. The current iterates are kept, so the next
        :meth:`solve` is warm-started automatically.
        """
        s = self.scaling
        if q is not None:
            q = np.asarray(q, dtype=np.float64)
            if q.shape != (self.problem.n,):
                raise ValueError(f"q must have length {self.problem.n}")
            self.problem.q = q.copy()
            self.work.q = s.c * s.d * q
            self.backend.q = self.work.q
        if l is not None or u is not None:
            new_l = np.asarray(l, dtype=np.float64) if l is not None \
                else self.problem.l
            new_u = np.asarray(u, dtype=np.float64) if u is not None \
                else self.problem.u
            if new_l.shape != (self.problem.m,) \
                    or new_u.shape != (self.problem.m,):
                raise ValueError(f"bounds must have length {self.problem.m}")
            if np.any(new_l > new_u):
                raise ValueError("every lower bound must satisfy l <= u")
            self.problem.l = new_l.copy()
            self.problem.u = new_u.copy()
            l_s = s.e * new_l
            u_s = s.e * new_u
            l_s[np.isneginf(new_l)] = -np.inf
            u_s[np.isposinf(new_u)] = np.inf
            self.work.l = l_s
            self.work.u = u_s
            # Equality/loose-row pattern may have changed with the bounds.
            new_rho_vec = self._build_rho_vec(self.rho)
            if not np.array_equal(new_rho_vec, self.rho_vec):
                self.rho_vec = new_rho_vec
                self.backend.update_rho(new_rho_vec)

    # ------------------------------------------------------------------
    def _residuals(self):
        """Residuals and the norms entering the tolerances.

        Unscaled by default; with ``settings.scaled_termination`` the
        check runs directly on the scaled iterates (cheaper, as OSQP's
        option of the same name).
        """
        s = self.scaling
        ax_s = self.work.A.matvec(self.x)
        px_s = self.work.P.matvec(self.x)
        aty_s = self.at.matvec(self.y)

        if self.settings.scaled_termination:
            ax = ax_s
            z = self.z
            pri_vec = ax - z
            pri_res = float(np.abs(pri_vec).max()) if pri_vec.size else 0.0
            pri_norm = max(_abs_max(ax), _abs_max(z))
            dua_vec = px_s + self.work.q + aty_s
            dua_res = float(np.abs(dua_vec).max()) if dua_vec.size else 0.0
            dua_norm = max(_abs_max(px_s), _abs_max(aty_s),
                           _abs_max(self.work.q))
            return pri_res, dua_res, pri_norm, dua_norm

        ax = s.einv * ax_s
        z = s.einv * self.z
        pri_vec = ax - z
        pri_res = float(np.abs(pri_vec).max()) if pri_vec.size else 0.0
        pri_norm = max(_abs_max(ax), _abs_max(z))

        inv_c = 1.0 / s.c
        px = inv_c * s.dinv * px_s
        aty = inv_c * s.dinv * aty_s
        q = inv_c * s.dinv * self.work.q
        dua_vec = px + q + aty
        dua_res = float(np.abs(dua_vec).max()) if dua_vec.size else 0.0
        dua_norm = max(_abs_max(px), _abs_max(aty), _abs_max(q))
        return pri_res, dua_res, pri_norm, dua_norm

    def _rho_estimate(self, pri_res, dua_res, pri_norm, dua_norm) -> float:
        num = pri_res / max(pri_norm, _DIV_GUARD)
        den = dua_res / max(dua_norm, _DIV_GUARD)
        estimate = self.rho * np.sqrt(num / max(den, _DIV_GUARD))
        return float(np.clip(estimate, RHO_MIN, RHO_MAX))

    # ------------------------------------------------------------------
    def solve(self) -> OSQPResult:
        """Run ADMM to termination and return the (unscaled) result."""
        t0 = time.perf_counter()
        settings = self.settings
        work = self.work
        info = SolverInfo(rho_final=self.rho)
        status = None
        prim_cert = None
        dual_cert = None
        out_of_time = False

        for k in range(1, settings.max_iter + 1):
            x_tilde, z_tilde, pcg_iters = self.backend.solve(
                self.x, self.z, self.y)
            info.pcg_iterations += pcg_iters
            info.pcg_per_admm.append(pcg_iters)

            alpha = settings.alpha
            x_new = alpha * x_tilde + (1.0 - alpha) * self.x
            z_relaxed = alpha * z_tilde + (1.0 - alpha) * self.z
            z_new = np.clip(z_relaxed + self.y / self.rho_vec,
                            work.l, work.u)
            y_new = self.y + self.rho_vec * (z_relaxed - z_new)

            delta_x = x_new - self.x
            delta_y = y_new - self.y
            self.x, self.z, self.y = x_new, z_new, y_new
            info.iterations = k

            if k % settings.check_termination == 0 or k == settings.max_iter:
                pri_res, dua_res, pri_norm, dua_norm = self._residuals()
                info.pri_res, info.dua_res = pri_res, dua_res
                if settings.record_history:
                    info.history.append((k, pri_res, dua_res, self.rho))
                eps_prim = settings.eps_abs + settings.eps_rel * pri_norm
                eps_dual = settings.eps_abs + settings.eps_rel * dua_norm
                if pri_res <= eps_prim and dua_res <= eps_dual:
                    status = SolverStatus.SOLVED
                    break

                dy_un = self.scaling.unscale_y(delta_y)
                if is_primal_infeasible(dy_un, self.problem.A,
                                        self.problem.l, self.problem.u,
                                        settings.eps_prim_inf):
                    status = SolverStatus.PRIMAL_INFEASIBLE
                    prim_cert = dy_un
                    break
                dx_un = self.scaling.unscale_x(delta_x)
                if is_dual_infeasible(dx_un, self.problem.P, self.problem.q,
                                      self.problem.A, self.problem.l,
                                      self.problem.u, settings.eps_dual_inf):
                    status = SolverStatus.DUAL_INFEASIBLE
                    dual_cert = dx_un
                    break

                if hasattr(self.backend, "set_tolerance_from_residuals"):
                    self.backend.set_tolerance_from_residuals(pri_res, dua_res)

                if (settings.adaptive_rho
                        and settings.adaptive_rho_interval > 0
                        and k % settings.adaptive_rho_interval == 0):
                    estimate = self._rho_estimate(pri_res, dua_res,
                                                  pri_norm, dua_norm)
                    tol = settings.adaptive_rho_tolerance
                    if (estimate > tol * self.rho
                            or estimate < self.rho / tol):
                        self.update_rho(estimate)
                        info.rho_updates += 1

                if settings.verbose:  # pragma: no cover - logging only
                    print(f"iter {k:5d}  pri {pri_res:.3e}  dua {dua_res:.3e}"
                          f"  rho {self.rho:.3e}  pcg {pcg_iters}")

            if (settings.time_limit > 0.0
                    and time.perf_counter() - t0 > settings.time_limit):
                out_of_time = True
                break

        if status is None:
            pri_res, dua_res, pri_norm, dua_norm = self._residuals()
            info.pri_res, info.dua_res = pri_res, dua_res
            eps_prim = settings.eps_abs + settings.eps_rel * pri_norm
            eps_dual = settings.eps_abs + settings.eps_rel * dua_norm
            near = (pri_res <= _INACCURATE_FACTOR * eps_prim
                    and dua_res <= _INACCURATE_FACTOR * eps_dual)
            if near:
                status = SolverStatus.SOLVED_INACCURATE
            elif out_of_time:
                status = SolverStatus.TIME_LIMIT_REACHED
            else:
                status = SolverStatus.MAX_ITER_REACHED

        x = self.scaling.unscale_x(self.x)
        y = self.scaling.unscale_y(self.y)
        z = self.scaling.unscale_z(self.z)
        info.rho_final = self.rho
        info.obj_val = self.problem.objective(x)
        info.setup_seconds = self._setup_seconds
        info.solve_seconds = time.perf_counter() - t0

        result = OSQPResult(x=x, y=y, z=z, status=status, info=info,
                            prim_inf_cert=prim_cert, dual_inf_cert=dual_cert)
        if settings.polish and status.is_optimal:
            result = polish(self.problem, result, settings)
        return result


def solve(problem: QProblem,
          settings: OSQPSettings | None = None) -> OSQPResult:
    """One-shot convenience wrapper around :class:`OSQPSolver`."""
    return OSQPSolver(problem, settings).solve()


def _abs_max(vec: np.ndarray) -> float:
    return float(np.abs(vec).max()) if vec.size else 0.0


class ADMMAlgorithm(SolverAlgorithm):
    """Registry adapter for the OSQP/ADMM reference solver."""

    name = "admm"
    settings_type = OSQPSettings

    def solve(self, problem: QProblem,
              settings=None) -> OSQPResult:
        return OSQPSolver(problem, self.coerce_settings(settings)).solve()


register_algorithm(ADMMAlgorithm())
