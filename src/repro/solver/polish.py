"""Active-set solution polishing, following OSQP.

After ADMM converges to moderate accuracy, the active constraints are
read off the sign of the duals and the equality-constrained QP on the
active set is solved directly (regularized LDL^T plus iterative
refinement). If the polished point has smaller residuals it replaces the
ADMM solution.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import FactorizationError
from ..linalg import ldl_factor, minimum_degree
from ..qp import QProblem, assemble_kkt_upper
from ..sparse import CSRMatrix
from .results import OSQPResult, SolverStatus

__all__ = ["polish"]


def _kkt_residuals(problem: QProblem, x, y, z):
    pri = problem.primal_residual(x, z=problem.A.matvec(x))
    dual_vec = problem.P.matvec(x) + problem.q + problem.A.rmatvec(y)
    dua = float(np.abs(dual_vec).max()) if dual_vec.size else 0.0
    return pri, dua


def polish(problem: QProblem, result: OSQPResult, settings) -> OSQPResult:
    """Try to polish ``result``; returns the better of the two solutions."""
    y = result.y
    # A slightly negative dual on a row with an infinite lower bound is
    # numerical noise, not activity — pinning such a row would put
    # +-inf on the KKT right-hand side.
    lower_active = np.flatnonzero((y < 0.0) & np.isfinite(problem.l))
    upper_active = np.flatnonzero((y > 0.0) & np.isfinite(problem.u))
    n_act = lower_active.size + upper_active.size
    n = problem.n

    if n_act == 0:
        # Unconstrained in the active-set sense: solve P x = -q.
        rows = CSRMatrix.zeros((0, n))
        b_act = np.zeros(0)
    else:
        rows = _take_rows(problem.A, np.concatenate([lower_active,
                                                     upper_active]))
        b_act = np.concatenate([problem.l[lower_active],
                                problem.u[upper_active]])

    delta = settings.polish_delta
    try:
        kkt_upper = assemble_kkt_upper(problem.P, rows, delta,
                                       np.full(rows.shape[0], 1.0 / delta))
        dim = n + rows.shape[0]
        perm = (minimum_degree(kkt_upper) if dim <= 1500
                else np.arange(dim, dtype=np.int64))
        iperm = np.empty_like(perm)
        iperm[perm] = np.arange(dim)
        factor = ldl_factor(kkt_upper.symmetric_permute_upper(perm))
    except FactorizationError:
        return result

    rhs = np.concatenate([-problem.q, b_act])
    sol = factor.solve(rhs[perm])[iperm]

    # Iterative refinement against the *unregularized* KKT system.
    for _ in range(settings.polish_refine_iter):
        res = rhs - _kkt_apply(problem.P, rows, sol)
        sol = sol + factor.solve(res[perm])[iperm]

    x_pol = sol[:n]
    y_act = sol[n:]
    y_pol = np.zeros(problem.m)
    y_pol[lower_active] = y_act[:lower_active.size]
    y_pol[upper_active] = y_act[lower_active.size:]
    z_pol = problem.A.matvec(x_pol)

    # Dual feasibility of the guessed active set: lower-active rows need
    # y <= 0 and upper-active rows y >= 0. A wrong guess can still zero
    # the primal/dual residuals (it solves *some* equality-constrained
    # KKT system) while violating these signs — reject it.
    sign_tol = 1e-9 * max(1.0, float(np.abs(y_pol).max()) if y_pol.size
                          else 1.0)
    signs_ok = (np.all(y_pol[lower_active] <= sign_tol)
                and np.all(y_pol[upper_active] >= -sign_tol))

    old_pri, old_dua = _kkt_residuals(problem, result.x, result.y, result.z)
    new_pri, new_dua = _kkt_residuals(problem, x_pol, y_pol, z_pol)
    if signs_ok and new_pri <= old_pri + 1e-12 and new_dua <= old_dua + 1e-12:
        info = result.info
        info.polished = True
        info.obj_val = problem.objective(x_pol)
        info.pri_res, info.dua_res = new_pri, new_dua
        return OSQPResult(x=x_pol, y=y_pol, z=z_pol,
                          status=SolverStatus.SOLVED, info=info)
    return result


def _take_rows(mat: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """Select a subset of rows, keeping their order."""
    r, c, v = mat.to_coo()
    out_rows, out_cols, out_vals = [], [], []
    for new_i, old_i in enumerate(rows):
        s, e = mat.indptr[old_i], mat.indptr[old_i + 1]
        out_rows.append(np.full(e - s, new_i, dtype=np.int64))
        out_cols.append(mat.indices[s:e])
        out_vals.append(mat.data[s:e])
    if not out_rows:
        return CSRMatrix.zeros((0, mat.shape[1]))
    return CSRMatrix.from_coo(np.concatenate(out_rows),
                              np.concatenate(out_cols),
                              np.concatenate(out_vals),
                              (rows.size, mat.shape[1]))


def _kkt_apply(p: CSRMatrix, a_act: CSRMatrix, vec: np.ndarray) -> np.ndarray:
    """Apply the unregularized KKT matrix [[P, A'], [A, 0]]."""
    n = p.shape[0]
    x, y = vec[:n], vec[n:]
    top = p.matvec(x) + (a_act.rmatvec(y) if a_act.shape[0] else 0.0)
    bottom = a_act.matvec(x) if a_act.shape[0] else np.zeros(0)
    return np.concatenate([top, bottom])
