"""Reference QP solvers: OSQP-style ADMM and restarted PDHG (PDQP).

Both algorithms implement the :class:`SolverAlgorithm` interface and
register themselves by name (``"admm"``, ``"pdqp"``); pick explicitly
with :func:`solve_with` or per-structure with
:func:`~repro.solver.select.choose_algorithm`.
"""

from .algorithms import (SolverAlgorithm, available_algorithms,
                         get_algorithm, register_algorithm, solve_with)
from .infeasibility import is_dual_infeasible, is_primal_infeasible
from .linsys import DirectBackend, IndirectBackend, make_backend
from .osqp import ADMMAlgorithm, OSQPSolver, solve
from .pdqp import PDQPAlgorithm, PDQPSolver, solve_pdqp
from .polish import polish
from .results import (TERMINATION_REASONS, OSQPResult, SolverInfo,
                      SolverResult, SolverStatus)
from .select import choose_algorithm, structure_features
from .settings import OSQPSettings, PDQPSettings, SolverSettings

__all__ = [
    "OSQPSolver",
    "solve",
    "PDQPSolver",
    "solve_pdqp",
    "SolverAlgorithm",
    "ADMMAlgorithm",
    "PDQPAlgorithm",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "solve_with",
    "choose_algorithm",
    "structure_features",
    "SolverSettings",
    "OSQPSettings",
    "PDQPSettings",
    "OSQPResult",
    "SolverResult",
    "SolverInfo",
    "SolverStatus",
    "TERMINATION_REASONS",
    "DirectBackend",
    "IndirectBackend",
    "make_backend",
    "polish",
    "is_primal_infeasible",
    "is_dual_infeasible",
]
