"""The OSQP ADMM solver with direct (LDL^T) and indirect (PCG) backends."""

from .infeasibility import is_dual_infeasible, is_primal_infeasible
from .linsys import DirectBackend, IndirectBackend, make_backend
from .osqp import OSQPSolver, solve
from .polish import polish
from .results import OSQPResult, SolverInfo, SolverStatus
from .settings import OSQPSettings

__all__ = [
    "OSQPSolver",
    "solve",
    "OSQPSettings",
    "OSQPResult",
    "SolverInfo",
    "SolverStatus",
    "DirectBackend",
    "IndirectBackend",
    "make_backend",
    "polish",
    "is_primal_infeasible",
    "is_dual_infeasible",
]
