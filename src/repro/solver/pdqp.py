"""Restarted accelerated PDHG for QP (the PDQP algorithm), from scratch.

A factorization-free peer of the ADMM path (Lu & Yang, "A Practical
and Optimal First-Order Method for Large-Scale Convex Quadratic
Programming"): primal-dual hybrid gradient with the quadratic handled
by linearization (Condat-Vu), Halpern anchoring for the accelerated
O(1/k) residual rate, adaptive restarts, and a primal weight balanced
from the residual ratio. The method touches the problem only through
``P x``, ``A x``, ``A' y`` and the box projection — exactly the kernel
set of the RSQP datapath, which is why
:func:`repro.hw.compiler.compile_pdqp_program` can lower this loop
onto the customized accelerator without assembling a KKT system.

One iteration on the (Ruiz-scaled) problem, with step sizes
``sigma = omega / ||A||`` and ``tau = tau_scale / (omega ||A|| +
lambda_max(P))`` so the Condat-Vu condition ``tau (sigma ||A||^2 +
lambda_max(P)) < 1`` holds:

.. code-block:: text

    x+ = x - tau (P x + q + A' y)          # linearized primal step
    xb = 2 x+ - x                          # extrapolation
    v  = y + sigma (A xb)
    y+ = v - sigma clip(v / sigma, l, u)   # prox of the box conjugate
    (x, y) <- lam (x0, y0) + (1 - lam) (x+, y+)   # Halpern anchor

with ``lam = 1 / (k + 2)`` reset (together with the anchor
``(x0, y0)``) at every restart. Termination follows the OSQP
convention on unscaled residuals with ``z = clip(A x, l, u)``; the
method carries no infeasibility certificates (an infeasible problem
terminates at ``max_iter``).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from ..qp import QProblem, ruiz_equilibrate
from .algorithms import SolverAlgorithm, register_algorithm
from .results import SolverInfo, SolverResult, SolverStatus
from .settings import OMEGA_MAX, OMEGA_MIN, PDQPSettings

__all__ = ["PDQPSolver", "solve_pdqp", "estimate_operator_norms"]

#: Residuals within this factor of the tolerance at max_iter still count
#: as an (inaccurate) solution — same convention as the ADMM solver.
_INACCURATE_FACTOR = 10.0
_DIV_GUARD = 1e-15


def estimate_operator_norms(p_mat, a_mat, at_mat, *,
                            iterations: int = 50,
                            seed: int = 0) -> Tuple[float, float]:
    """Power-iteration estimates of ``||A||_2`` and ``lambda_max(P)``.

    Deterministic (fixed seed) so a given structure always produces
    the same step sizes — the property the serving cache and the
    bit-identity tests rely on.
    """
    rng = np.random.default_rng(seed)
    n = p_mat.shape[0]
    m = a_mat.shape[0]

    norm_a = 0.0
    if m > 0 and n > 0:
        v = rng.standard_normal(n)
        for _ in range(iterations):
            nv = float(np.linalg.norm(v))
            if nv <= _DIV_GUARD:
                break
            v /= nv
            v = at_mat.matvec(a_mat.matvec(v))
        norm_a = float(np.sqrt(max(np.linalg.norm(v), 0.0)))

    lam_p = 0.0
    if n > 0:
        v = rng.standard_normal(n)
        for _ in range(iterations):
            nv = float(np.linalg.norm(v))
            if nv <= _DIV_GUARD:
                break
            v /= nv
            v = p_mat.matvec(v)
        lam_p = float(np.linalg.norm(v))
    return norm_a, lam_p


def _steps(omega: float, norm_a: float, lam_p: float,
           tau_scale: float) -> Tuple[float, float]:
    """(tau, sigma) satisfying the Condat-Vu condition for ``omega``."""
    if norm_a <= _DIV_GUARD:
        # No (or zero) constraints: pure gradient descent on the
        # quadratic; sigma is inert but must stay finite.
        sigma = omega
    else:
        sigma = omega / norm_a
    denom = omega * norm_a + lam_p
    tau = tau_scale / max(denom, _DIV_GUARD)
    return tau, sigma


class PDQPSolver:
    """Reusable PDQP solver: setup once, solve (and re-solve) many times.

    Mirrors :class:`repro.solver.OSQPSolver`'s shape: Ruiz scaling at
    construction, ``warm_start`` in the unscaled space, termination on
    unscaled residuals with the shared ``eps_abs``/``eps_rel``
    convention, and a :class:`~repro.solver.results.SolverResult`
    return value.
    """

    def __init__(self, problem: QProblem,
                 settings: Optional[PDQPSettings] = None,
                 *, scaling=None):
        t0 = time.perf_counter()
        self.problem = problem
        self.settings = settings if settings is not None else PDQPSettings()
        # ``scaling`` accepts a precomputed Scaling for this problem
        # (the batched setup path equilibrates all lanes in one
        # vectorized pass, bit-identical to the solo call below).
        self.scaling = (scaling if scaling is not None
                        else ruiz_equilibrate(problem, self.settings.scaling))
        self.work = self.scaling.problem
        self.at = self.work.A.transpose()
        self.norm_a, self.lam_p = estimate_operator_norms(
            self.work.P, self.work.A, self.at,
            iterations=self.settings.power_iterations)
        self.omega = float(self.settings.omega)
        self.tau, self.sigma = _steps(self.omega, self.norm_a, self.lam_p,
                                      self.settings.tau_scale)
        n, m = problem.n, problem.m
        self.x = np.zeros(n)
        self.y = np.zeros(m)
        self._l = np.nan_to_num(self.work.l, neginf=-1e30)
        self._u = np.nan_to_num(self.work.u, posinf=1e30)
        self._setup_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    def warm_start(self, x=None, y=None) -> None:
        """Provide initial iterates in the *original* (unscaled) space."""
        if x is not None:
            self.x = self.scaling.scale_x(np.asarray(x, dtype=np.float64))
        if y is not None:
            self.y = self.scaling.scale_y(np.asarray(y, dtype=np.float64))

    def update_omega(self, omega: float) -> None:
        """Install a new primal weight (recomputes both step sizes)."""
        self.omega = float(np.clip(omega, OMEGA_MIN, OMEGA_MAX))
        self.tau, self.sigma = _steps(self.omega, self.norm_a, self.lam_p,
                                      self.settings.tau_scale)

    def update(self, q=None, l=None, u=None) -> None:
        """Update problem vectors in place (parametric re-solve).

        The peer of :meth:`repro.solver.OSQPSolver.update`: matrices —
        and therefore the operator-norm estimates and step sizes built
        from them — stay fixed while the cost vector and/or bounds
        change between solves. The current iterates (and the adapted
        primal weight) are kept, so the next :meth:`solve` is
        warm-started automatically.
        """
        s = self.scaling
        if q is not None:
            q = np.asarray(q, dtype=np.float64)
            if q.shape != (self.problem.n,):
                raise ValueError(f"q must have length {self.problem.n}")
            self.problem.q = q.copy()
            self.work.q = s.c * s.d * q
        if l is not None or u is not None:
            new_l = np.asarray(l, dtype=np.float64) if l is not None \
                else self.problem.l
            new_u = np.asarray(u, dtype=np.float64) if u is not None \
                else self.problem.u
            if new_l.shape != (self.problem.m,) \
                    or new_u.shape != (self.problem.m,):
                raise ValueError(f"bounds must have length {self.problem.m}")
            if np.any(new_l > new_u):
                raise ValueError("every lower bound must satisfy l <= u")
            self.problem.l = new_l.copy()
            self.problem.u = new_u.copy()
            l_s = s.e * new_l
            u_s = s.e * new_u
            l_s[np.isneginf(new_l)] = -np.inf
            u_s[np.isposinf(new_u)] = np.inf
            self.work.l = l_s
            self.work.u = u_s
            # The iteration's box projections read the clipped copies.
            self._l = np.nan_to_num(self.work.l, neginf=-1e30)
            self._u = np.nan_to_num(self.work.u, posinf=1e30)

    # ------------------------------------------------------------------
    def _residuals(self, px_s, aty_s):
        """Unscaled KKT residuals with ``z = clip(A x, l, u)``.

        Matches ``OSQPSolver._residuals`` conventions (inf-norms,
        unscaled unless ``settings.scaled_termination``), reusing the
        ``P x`` / ``A' y`` products the iteration maintains.
        """
        s = self.scaling
        ax_s = self.work.A.matvec(self.x)
        z_s = np.clip(ax_s, self._l, self._u)

        if self.settings.scaled_termination:
            pri_vec = ax_s - z_s
            pri_res = _abs_max(pri_vec)
            pri_norm = max(_abs_max(ax_s), _abs_max(z_s))
            dua_vec = px_s + self.work.q + aty_s
            dua_res = _abs_max(dua_vec)
            dua_norm = max(_abs_max(px_s), _abs_max(aty_s),
                           _abs_max(self.work.q))
            return pri_res, dua_res, pri_norm, dua_norm, z_s

        ax = s.einv * ax_s
        z = s.einv * z_s
        pri_res = _abs_max(ax - z)
        pri_norm = max(_abs_max(ax), _abs_max(z))

        inv_c = 1.0 / s.c
        px = inv_c * s.dinv * px_s
        aty = inv_c * s.dinv * aty_s
        q = inv_c * s.dinv * self.work.q
        dua_res = _abs_max(px + q + aty)
        dua_norm = max(_abs_max(px), _abs_max(aty), _abs_max(q))
        return pri_res, dua_res, pri_norm, dua_norm, z_s

    def _omega_estimate(self, pri_res, dua_res, pri_norm, dua_norm) -> float:
        """Residual-balance primal weight (the adaptive-rho analogue)."""
        num = pri_res / max(pri_norm, _DIV_GUARD)
        den = dua_res / max(dua_norm, _DIV_GUARD)
        estimate = self.omega * np.sqrt(num / max(den, _DIV_GUARD))
        return float(np.clip(estimate, OMEGA_MIN, OMEGA_MAX))

    # ------------------------------------------------------------------
    def solve(self) -> SolverResult:
        """Run restarted Halpern PDHG to termination (unscaled result)."""
        t0 = time.perf_counter()
        settings = self.settings
        work = self.work
        p_mat, a_mat, at_mat = work.P, work.A, self.at
        q = work.q
        info = SolverInfo(rho_final=self.omega)
        status = None
        out_of_time = False

        x0 = self.x.copy()
        y0 = self.y.copy()
        halpern_k = 0
        since_restart = 0
        last_restart_worst = np.inf
        z_s = np.clip(a_mat.matvec(self.x), self._l, self._u)
        px = p_mat.matvec(self.x)
        aty = at_mat.matvec(self.y)

        for k in range(1, settings.max_iter + 1):
            xp = self.x - self.tau * (px + q + aty)
            xb = 2.0 * xp - self.x
            v = self.y + self.sigma * a_mat.matvec(xb)
            yp = v - self.sigma * np.clip(v / self.sigma, self._l, self._u)
            lam = 1.0 / (halpern_k + 2.0)
            self.x = lam * x0 + (1.0 - lam) * xp
            self.y = lam * y0 + (1.0 - lam) * yp
            halpern_k += 1
            since_restart += 1
            px = p_mat.matvec(self.x)
            aty = at_mat.matvec(self.y)
            info.iterations = k

            if k % settings.check_termination == 0 or k == settings.max_iter:
                pri_res, dua_res, pri_norm, dua_norm, z_s = \
                    self._residuals(px, aty)
                info.pri_res, info.dua_res = pri_res, dua_res
                if settings.record_history:
                    info.history.append((k, pri_res, dua_res, self.omega))
                eps_prim = settings.eps_abs + settings.eps_rel * pri_norm
                eps_dual = settings.eps_abs + settings.eps_rel * dua_norm
                if pri_res <= eps_prim and dua_res <= eps_dual:
                    status = SolverStatus.SOLVED
                    break
                if settings.verbose:  # pragma: no cover - logging only
                    print(f"iter {k:6d}  pri {pri_res:.3e}  "
                          f"dua {dua_res:.3e}  omega {self.omega:.3e}")

                worst = max(pri_res / max(eps_prim, _DIV_GUARD),
                            dua_res / max(eps_dual, _DIV_GUARD))
                if self._should_restart(since_restart, worst,
                                        last_restart_worst):
                    x0 = self.x.copy()
                    y0 = self.y.copy()
                    halpern_k = 0
                    since_restart = 0
                    last_restart_worst = worst
                    info.restarts += 1
                    if settings.omega_adaptive:
                        estimate = self._omega_estimate(
                            pri_res, dua_res, pri_norm, dua_norm)
                        tol = settings.omega_tolerance
                        if (estimate > tol * self.omega
                                or estimate < self.omega / tol):
                            self.update_omega(estimate)
                            info.omega_updates += 1

            if (settings.time_limit > 0.0
                    and time.perf_counter() - t0 > settings.time_limit):
                out_of_time = True
                break

        if status is None:
            pri_res, dua_res, pri_norm, dua_norm, z_s = \
                self._residuals(px, aty)
            info.pri_res, info.dua_res = pri_res, dua_res
            eps_prim = settings.eps_abs + settings.eps_rel * pri_norm
            eps_dual = settings.eps_abs + settings.eps_rel * dua_norm
            near = (pri_res <= _INACCURATE_FACTOR * eps_prim
                    and dua_res <= _INACCURATE_FACTOR * eps_dual)
            if near:
                status = SolverStatus.SOLVED_INACCURATE
            elif out_of_time:
                status = SolverStatus.TIME_LIMIT_REACHED
            else:
                status = SolverStatus.MAX_ITER_REACHED

        x = self.scaling.unscale_x(self.x)
        y = self.scaling.unscale_y(self.y)
        z = self.scaling.unscale_z(z_s)
        info.rho_final = self.omega
        info.obj_val = self.problem.objective(x)
        info.setup_seconds = self._setup_seconds
        info.solve_seconds = time.perf_counter() - t0
        return SolverResult(x=x, y=y, z=z, status=status, info=info)

    def _should_restart(self, since_restart: int, worst: float,
                        last_restart_worst: float) -> bool:
        mode = self.settings.restart
        if mode == "none":
            return False
        if since_restart >= self.settings.restart_interval:
            return True
        if mode == "adaptive":
            return worst <= self.settings.restart_beta * last_restart_worst
        return False


def solve_pdqp(problem: QProblem,
               settings: Optional[PDQPSettings] = None) -> SolverResult:
    """One-shot convenience wrapper around :class:`PDQPSolver`."""
    return PDQPSolver(problem, settings).solve()


def _abs_max(vec: np.ndarray) -> float:
    return float(np.abs(vec).max()) if vec.size else 0.0


class PDQPAlgorithm(SolverAlgorithm):
    """Registry adapter for the PDQP reference solver."""

    name = "pdqp"
    settings_type = PDQPSettings

    def solve(self, problem: QProblem,
              settings=None) -> SolverResult:
        return solve_pdqp(problem, self.coerce_settings(settings))


register_algorithm(PDQPAlgorithm())
