"""The common ``SolverAlgorithm`` interface and its registry.

The RSQP thesis is that the customization flow is algorithm-agnostic:
any first-order QP method built from SpMV / axpby / dot / projection
kernels runs on the same problem-specific datapaths. This module gives
the *software* side of that claim one seam: every reference algorithm
is a :class:`SolverAlgorithm` with a name, a settings type, and a
``solve`` method returning the shared
:class:`~repro.solver.results.SolverResult` surface. The serving and
fleet layers select among registered algorithms per problem structure
(:mod:`repro.solver.select`).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, Dict, Optional, Tuple, Type

from .results import SolverResult
from .settings import SolverSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..qp import QProblem

__all__ = ["SolverAlgorithm", "register_algorithm", "get_algorithm",
           "available_algorithms", "solve_with"]


class SolverAlgorithm(abc.ABC):
    """One QP algorithm behind the uniform solve interface.

    Subclasses declare ``name`` (the registry key, also used by the
    serving layer's ``algorithm=`` settings) and ``settings_type`` (a
    :class:`~repro.solver.settings.SolverSettings` subclass), and
    implement :meth:`solve`.
    """

    #: Registry key; also the vocabulary of ``SolverService(algorithm=...)``.
    name: ClassVar[str] = ""
    #: The settings dataclass this algorithm consumes.
    settings_type: ClassVar[Type[SolverSettings]] = SolverSettings

    @abc.abstractmethod
    def solve(self, problem: "QProblem",
              settings: Optional[SolverSettings] = None) -> SolverResult:
        """Solve ``problem`` and return the uniform result surface."""

    def default_settings(self) -> SolverSettings:
        return self.settings_type()

    def coerce_settings(self,
                        settings: Optional[SolverSettings]
                        ) -> SolverSettings:
        """Adapt foreign settings to this algorithm's type.

        Shared termination fields (``eps_abs``, ``eps_rel``,
        ``max_iter``, ``time_limit``, ``check_termination``,
        ``scaling``, ...) carry over; algorithm-specific fields fall
        back to this algorithm's defaults. This is what lets one
        service-level settings object drive whichever algorithm the
        per-structure selector picks.
        """
        if settings is None:
            return self.default_settings()
        if isinstance(settings, self.settings_type):
            return settings
        base = SolverSettings.__dataclass_fields__
        shared = {name: getattr(settings, name) for name in base}
        # max_iter defaults differ per algorithm (PDHG iterations are
        # much cheaper); only carry an explicit, non-default budget.
        if settings.max_iter == type(settings)().max_iter:
            shared.pop("max_iter", None)
        return self.settings_type(**shared)


_REGISTRY: Dict[str, SolverAlgorithm] = {}


def register_algorithm(algorithm: SolverAlgorithm) -> SolverAlgorithm:
    """Add an algorithm instance to the registry (latest wins)."""
    if not algorithm.name:
        raise ValueError("algorithm must declare a non-empty name")
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


def get_algorithm(name: str) -> SolverAlgorithm:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; available: "
            f"{', '.join(available_algorithms())}") from None


def available_algorithms() -> Tuple[str, ...]:
    """Registered algorithm names, sorted."""
    return tuple(sorted(_REGISTRY))


def solve_with(name: str, problem: "QProblem",
               settings: Optional[SolverSettings] = None) -> SolverResult:
    """Solve ``problem`` with the named algorithm.

    ``settings`` may be any :class:`SolverSettings`; shared fields are
    coerced into the algorithm's own settings type (see
    :meth:`SolverAlgorithm.coerce_settings`).
    """
    algorithm = get_algorithm(name)
    return algorithm.solve(problem, algorithm.coerce_settings(settings))
