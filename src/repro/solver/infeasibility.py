"""Primal/dual infeasibility certificates, as in OSQP.

ADMM iterates themselves certify infeasibility: when the problem has no
feasible point, the successive differences ``delta_y = y^{k+1} - y^k``
converge to a certificate of primal infeasibility, and ``delta_x`` to a
certificate of dual infeasibility (unboundedness).
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["is_primal_infeasible", "is_dual_infeasible"]


def _support(vec: np.ndarray, bound: np.ndarray, positive: bool) -> np.ndarray:
    """Part of the support function sum, with 0 * inf treated as 0."""
    part = np.maximum(vec, 0.0) if positive else np.minimum(vec, 0.0)
    terms = np.zeros_like(part)
    nonzero = part != 0.0
    terms[nonzero] = part[nonzero] * bound[nonzero]
    return terms


def is_primal_infeasible(delta_y: np.ndarray, a: CSRMatrix,
                         l: np.ndarray, u: np.ndarray,
                         eps: float) -> bool:
    """Check the primal infeasibility certificate.

    ``delta_y`` certifies primal infeasibility when

    * ``||A' delta_y||_inf <= eps * ||delta_y||_inf`` and
    * ``u' max(delta_y, 0) + l' min(delta_y, 0) <= -eps * ||delta_y||_inf``.
    """
    norm = float(np.abs(delta_y).max()) if delta_y.size else 0.0
    if norm <= 0.0:
        return False
    scaled = delta_y / norm
    at_dy = a.rmatvec(scaled)
    if float(np.abs(at_dy).max()) > eps:
        return False
    support = (_support(scaled, u, positive=True).sum()
               + _support(scaled, l, positive=False).sum())
    return bool(support <= -eps)


def is_dual_infeasible(delta_x: np.ndarray, p: CSRMatrix, q: np.ndarray,
                       a: CSRMatrix, l: np.ndarray, u: np.ndarray,
                       eps: float) -> bool:
    """Check the dual infeasibility (primal unboundedness) certificate.

    ``delta_x`` certifies dual infeasibility when

    * ``||P delta_x||_inf <= eps * ||delta_x||_inf``,
    * ``q' delta_x <= -eps * ||delta_x||_inf``, and
    * ``A delta_x`` is a recession direction of ``[l, u]``: each
      component is ``<= eps`` where ``u`` is finite and ``>= -eps``
      where ``l`` is finite (after normalization).
    """
    norm = float(np.abs(delta_x).max()) if delta_x.size else 0.0
    if norm <= 0.0:
        return False
    scaled = delta_x / norm
    if float(np.abs(p.matvec(scaled)).max()) > eps:
        return False
    if float(np.dot(q, scaled)) > -eps:
        return False
    a_dx = a.matvec(scaled)
    upper_ok = np.all(a_dx[np.isfinite(u)] <= eps)
    lower_ok = np.all(a_dx[np.isfinite(l)] >= -eps)
    return bool(upper_ok and lower_ok)
