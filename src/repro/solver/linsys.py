"""Linear-system backends for the ADMM iteration.

Both backends answer the same question each iteration — given
``(x^k, z^k, y^k)``, produce ``(x̃^{k+1}, z̃^{k+1})`` — but differ in how:

* :class:`DirectBackend` factorizes the quasi-definite KKT matrix
  (eq. 2) once per ``rho`` with sparse LDL^T and back-substitutes.
* :class:`IndirectBackend` runs PCG (Algorithm 2) on the reduced system
  (eq. 3); this is the path RSQP accelerates in hardware.
"""

from __future__ import annotations

import numpy as np

from ..linalg import (JacobiPreconditioner, ldl_factor, ldl_symbolic,
                      minimum_degree, pcg)
from ..qp import ReducedKKTOperator, assemble_kkt_upper
from ..sparse import CSRMatrix
from .settings import OSQPSettings

__all__ = ["DirectBackend", "IndirectBackend", "make_backend"]

#: Above this KKT dimension the pure-Python minimum-degree ordering is
#: slower than the fill it saves; fall back to the natural order.
_AUTO_ORDERING_LIMIT = 1500


class DirectBackend:
    """LDL^T factorization of the KKT matrix with cached symbolic analysis."""

    name = "ldl"

    def __init__(self, p: CSRMatrix, a: CSRMatrix, q: np.ndarray,
                 settings: OSQPSettings, rho_vec: np.ndarray):
        self.p = p
        self.a = a
        self.q = q
        self.settings = settings
        self.n = p.shape[0]
        self.m = a.shape[0]
        self.rho_vec = np.asarray(rho_vec, dtype=np.float64)
        kkt = assemble_kkt_upper(p, a, settings.sigma, self.rho_vec)
        dim = self.n + self.m
        if settings.ordering == "mindeg" or (
                settings.ordering == "auto" and dim <= _AUTO_ORDERING_LIMIT):
            self.perm = minimum_degree(kkt)
        else:
            self.perm = np.arange(dim, dtype=np.int64)
        self.iperm = np.empty_like(self.perm)
        self.iperm[self.perm] = np.arange(dim)
        permuted = kkt.symmetric_permute_upper(self.perm)
        self.symbolic = ldl_symbolic(permuted)
        self.factor = ldl_factor(permuted, self.symbolic)
        self.factorizations = 1

    def update_rho(self, rho_vec: np.ndarray) -> None:
        """New step size requires a numeric refactorization (symbolic reused)."""
        self.rho_vec = np.asarray(rho_vec, dtype=np.float64)
        kkt = assemble_kkt_upper(self.p, self.a, self.settings.sigma,
                                 self.rho_vec)
        permuted = kkt.symmetric_permute_upper(self.perm)
        self.factor = ldl_factor(permuted, self.symbolic)
        self.factorizations += 1

    def solve(self, x, z, y):
        """One KKT solve; returns ``(x_tilde, z_tilde, inner_iterations)``."""
        rhs = np.concatenate([
            self.settings.sigma * x - self.q,
            z - y / self.rho_vec,
        ])
        sol = self.factor.solve(rhs[self.perm])[self.iperm]
        x_tilde = sol[:self.n]
        nu = sol[self.n:]
        z_tilde = z + (nu - y) / self.rho_vec
        return x_tilde, z_tilde, 0


class IndirectBackend:
    """PCG on the reduced KKT system — the paper's accelerated path."""

    name = "pcg"

    def __init__(self, p: CSRMatrix, a: CSRMatrix, q: np.ndarray,
                 settings: OSQPSettings, rho_vec: np.ndarray,
                 a_transpose: CSRMatrix | None = None):
        self.q = q
        self.settings = settings
        self.operator = ReducedKKTOperator(p, a, settings.sigma, rho_vec,
                                           a_transpose=a_transpose)
        self.preconditioner = JacobiPreconditioner(self.operator.diagonal())
        self.eps = settings.pcg_eps
        self._warm = None
        self.factorizations = 0

    @property
    def rho_vec(self) -> np.ndarray:
        return self.operator.rho_vec

    def update_rho(self, rho_vec: np.ndarray) -> None:
        """New step size: refresh the operator and preconditioner, O(nnz)."""
        self.operator.update_rho(rho_vec)
        self.preconditioner = JacobiPreconditioner(self.operator.diagonal())

    def set_tolerance_from_residuals(self, pri_res: float,
                                     dua_res: float) -> None:
        """Inexact-ADMM schedule.

        The tolerance decays geometrically (guaranteeing the inner error
        eventually stops limiting the outer iteration — a non-monotone
        residual-proportional rule can stall ADMM on a residual floor)
        and is tightened further when the outer residuals are already
        smaller than that.
        """
        if not self.settings.pcg_adaptive:
            return
        decayed = self.eps * self.settings.pcg_decay
        target = self.settings.pcg_eps_factor * min(pri_res, dua_res)
        self.eps = float(max(self.settings.pcg_eps_min,
                             min(decayed, target)))

    def solve(self, x, z, y):
        """One reduced-KKT solve; returns ``(x_tilde, z_tilde, pcg_iters)``."""
        rhs = self.operator.rhs(x, self.q, z, y)
        x0 = self._warm if self._warm is not None else x
        result = pcg(self.operator, rhs, x0=x0,
                     preconditioner=self.preconditioner, eps=self.eps,
                     max_iter=self.settings.pcg_max_iter)
        self._warm = result.x
        z_tilde = self.operator.a.matvec(result.x)
        return result.x, z_tilde, result.iterations


def make_backend(p, a, q, settings, rho_vec, a_transpose=None):
    """Instantiate the backend selected by ``settings.linsys``."""
    if settings.linsys == "ldl":
        return DirectBackend(p, a, q, settings, rho_vec)
    return IndirectBackend(p, a, q, settings, rho_vec,
                           a_transpose=a_transpose)
