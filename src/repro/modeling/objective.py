"""Quadratic objectives: quad_form, sum_squares, linear terms.

Objectives accumulate three kinds of terms, all of which the compiler
in :mod:`repro.modeling.problem` can lower to the QP standard form:

* ``quad_form(x, P)`` — ``x' P x`` on a single variable (``P`` PSD),
* ``sum_squares(e)`` — ``||e||^2`` of any affine expression (lowered via
  an auxiliary variable ``y = e``), and
* ``dot(c, e)`` — linear terms (plus constants).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..sparse import CSRMatrix
from .expression import Expression, Variable, as_expression

__all__ = ["QuadObjective", "Minimize", "quad_form", "sum_squares", "dot",
           "between"]


class QuadObjective:
    """A sum of quadratic, squared-norm, linear and constant terms."""

    def __init__(self, quad_terms=(), square_terms=(), linear_terms=(),
                 constant: float = 0.0):
        # [(variable, P CSRMatrix, weight)]
        self.quad_terms = list(quad_terms)
        # [(affine Expression, weight)]
        self.square_terms = list(square_terms)
        # [(coefficient vector, affine Expression)]
        self.linear_terms = list(linear_terms)
        self.constant = float(constant)

    # ------------------------------------------------------------------
    def __add__(self, other):
        if np.isscalar(other):
            return QuadObjective(self.quad_terms, self.square_terms,
                                 self.linear_terms,
                                 self.constant + float(other))
        if isinstance(other, QuadObjective):
            return QuadObjective(self.quad_terms + other.quad_terms,
                                 self.square_terms + other.square_terms,
                                 self.linear_terms + other.linear_terms,
                                 self.constant + other.constant)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar):
        if not np.isscalar(scalar):
            return NotImplemented
        w = float(scalar)
        if w < 0:
            raise ShapeError("objective terms must keep convexity "
                             "(non-negative weights)")
        return QuadObjective(
            [(v, p, weight * w) for v, p, weight in self.quad_terms],
            [(e, weight * w) for e, weight in self.square_terms],
            [(c * w, e) for c, e in self.linear_terms],
            self.constant * w)

    __rmul__ = __mul__

    def __sub__(self, other):
        if np.isscalar(other):
            return self + (-float(other))
        return NotImplemented

    def variables(self) -> list:
        """All variables referenced, in first-appearance order."""
        seen: dict[Variable, None] = {}
        for var, _, _ in self.quad_terms:
            seen.setdefault(var, None)
        for expr, _ in self.square_terms:
            for var in expr.variables:
                seen.setdefault(var, None)
        for _, expr in self.linear_terms:
            for var in expr.variables:
                seen.setdefault(var, None)
        return list(seen)


class Minimize(QuadObjective):
    """Wrapper marking an objective for minimization."""

    def __init__(self, objective):
        if np.isscalar(objective):
            super().__init__(constant=float(objective))
        elif isinstance(objective, QuadObjective):
            super().__init__(objective.quad_terms, objective.square_terms,
                             objective.linear_terms, objective.constant)
        else:
            raise ShapeError(
                "Minimize expects a quadratic objective; build one from "
                "quad_form / sum_squares / dot")


def quad_form(x: Variable, p) -> QuadObjective:
    """``x' P x`` for a single variable and symmetric PSD ``P``."""
    if not isinstance(x, Variable):
        raise ShapeError("quad_form takes a Variable directly; use "
                         "sum_squares for general affine expressions")
    if not isinstance(p, CSRMatrix):
        p = CSRMatrix.from_dense(np.asarray(p, dtype=np.float64))
    if p.shape != (x.size, x.size):
        raise ShapeError(f"P must be {x.size}x{x.size}")
    if not p.allclose(p.transpose(), atol=1e-10):
        raise ShapeError("P must be symmetric")
    return QuadObjective(quad_terms=[(x, p, 1.0)])


def sum_squares(expr) -> QuadObjective:
    """``||e||_2^2`` of an affine expression."""
    expr = as_expression(expr)
    return QuadObjective(square_terms=[(expr, 1.0)])


def dot(c, expr) -> QuadObjective:
    """Linear term ``c' e`` (constant vector ``c`` first)."""
    if isinstance(c, Expression):
        raise ShapeError("dot(c, e) takes a constant vector first")
    expr = as_expression(expr)
    coeff = np.asarray(c, dtype=np.float64)
    if coeff.ndim == 0:
        coeff = np.full(expr.size, float(coeff))
    if coeff.shape != (expr.size,):
        raise ShapeError("coefficient vector must match the expression")
    return QuadObjective(linear_terms=[(coeff, expr)])


def between(lower, expr, upper):
    """Two-sided constraint ``l <= e <= u`` (chained ``<=`` does not
    compose with numpy operands, so spell it explicitly)."""
    from .expression import Constraint, _as_vector
    expr = as_expression(expr)
    return Constraint(expr, _as_vector(lower, expr.size),
                      _as_vector(upper, expr.size))
