"""A small CVXPY-style modeling layer compiling to the QP standard form.

The paper integrates RSQP with CVXPY; this subpackage provides the
modeling surface a downstream user needs to reach the solver (and hence
the accelerator) without hand-assembling ``(P, q, A, l, u)``.
"""

from .expression import Constraint, Expression, Variable, as_expression
from .objective import (Minimize, QuadObjective, between, dot, quad_form,
                        sum_squares)
from .problem import CompiledModel, ModelProblem

__all__ = [
    "Variable",
    "Expression",
    "Constraint",
    "as_expression",
    "Minimize",
    "QuadObjective",
    "quad_form",
    "sum_squares",
    "dot",
    "between",
    "ModelProblem",
    "CompiledModel",
]
