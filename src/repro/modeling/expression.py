"""Affine expressions over optimization variables.

A deliberately small modeling layer in the spirit of CVXPY (which the
paper integrates RSQP with): affine vector expressions built from
:class:`Variable` leaves by matrix multiplication, addition and scaling.
Every expression is canonicalized on the fly as

.. math::  e(v_1, ..., v_k) = \\sum_i M_i v_i + b

with sparse coefficient blocks ``M_i`` — exactly the form the compiler
in :mod:`repro.modeling.problem` stacks into the QP's ``A`` matrix.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..exceptions import ShapeError
from ..sparse import CSRMatrix, eye

__all__ = ["Variable", "Expression", "as_expression", "Constraint"]

_variable_counter = itertools.count()


class Expression:
    """An affine vector expression ``sum_i M_i v_i + b``."""

    #: Make numpy defer binary operations (including @) to our
    #: reflected methods instead of broadcasting elementwise.
    __array_ufunc__ = None

    def __init__(self, coeffs: dict, const: np.ndarray):
        self.coeffs = dict(coeffs)   # Variable -> CSRMatrix
        self.const = np.asarray(const, dtype=np.float64)
        for var, mat in self.coeffs.items():
            if mat.shape != (self.size, var.size):
                raise ShapeError(
                    f"coefficient of {var.name} has shape {mat.shape}, "
                    f"expected {(self.size, var.size)}")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.const.size)

    @property
    def variables(self) -> tuple:
        return tuple(self.coeffs)

    def value(self) -> np.ndarray:
        """Evaluate at the variables' current values."""
        out = self.const.copy()
        for var, mat in self.coeffs.items():
            if var.value is None:
                raise ValueError(f"variable {var.name} has no value yet")
            out += mat.matvec(var.value)
        return out

    # -- algebra ---------------------------------------------------------
    def __add__(self, other):
        other = as_expression(other, size=self.size)
        if other.size != self.size:
            raise ShapeError("added expressions must have equal sizes")
        coeffs = dict(self.coeffs)
        for var, mat in other.coeffs.items():
            coeffs[var] = coeffs[var] + mat if var in coeffs else mat
        return Expression(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self):
        return self * -1.0

    def __sub__(self, other):
        return self + (as_expression(other, size=self.size) * -1.0)

    def __rsub__(self, other):
        return as_expression(other, size=self.size) + (self * -1.0)

    def __mul__(self, scalar):
        if not np.isscalar(scalar):
            return NotImplemented
        scalar = float(scalar)
        return Expression({v: scalar * m for v, m in self.coeffs.items()},
                          scalar * self.const)

    __rmul__ = __mul__

    def __rmatmul__(self, matrix):
        """``M @ expr`` for a dense array or CSRMatrix ``M``."""
        if isinstance(matrix, CSRMatrix):
            mat = matrix
        else:
            mat = CSRMatrix.from_dense(np.atleast_2d(
                np.asarray(matrix, dtype=np.float64)))
        if mat.shape[1] != self.size:
            raise ShapeError(
                f"matrix with {mat.shape[1]} columns cannot multiply an "
                f"expression of size {self.size}")
        coeffs = {}
        for var, block in self.coeffs.items():
            coeffs[var] = mat.matmul(block)
        return Expression(coeffs, mat.matvec(self.const))

    # -- comparisons build constraints ------------------------------------
    def __le__(self, other):
        rhs = _as_vector(other, self.size)
        return Constraint(self, np.full(self.size, -np.inf), rhs)

    def __ge__(self, other):
        rhs = _as_vector(other, self.size)
        return Constraint(self, rhs, np.full(self.size, np.inf))

    def __eq__(self, other):  # noqa: A003 - modeling DSL semantics
        rhs = _as_vector(other, self.size)
        return Constraint(self, rhs, rhs.copy())

    __hash__ = None  # expressions are not hashable (== builds constraints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(v.name for v in self.coeffs)
        return f"Expression(size={self.size}, vars=[{names}])"


class Variable(Expression):
    """An optimization variable of dimension ``n`` (a leaf expression)."""

    def __init__(self, n: int, name: str | None = None):
        if n < 1:
            raise ShapeError("variable dimension must be positive")
        self._n = int(n)
        self.name = name if name is not None \
            else f"var{next(_variable_counter)}"
        self.value: np.ndarray | None = None
        super().__init__({self: eye(self._n)}, np.zeros(self._n))

    @property
    def size(self) -> int:
        return self._n

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        # As an Expression, == must build a constraint; identity is by
        # object. Dictionary keying uses __hash__ (id) + this __eq__,
        # so return True only for the same object to keep dict behavior
        # sane while still allowing `x == rhs` constraints.
        if other is self:
            return True
        return Expression.__eq__(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name}, n={self._n})"


class Constraint:
    """A two-sided affine constraint ``l <= e <= u``."""

    def __init__(self, expr: Expression, lower, upper):
        self.expr = expr
        self.lower = np.asarray(lower, dtype=np.float64)
        self.upper = np.asarray(upper, dtype=np.float64)
        if self.lower.shape != (expr.size,) \
                or self.upper.shape != (expr.size,):
            raise ShapeError("constraint bounds must match the expression")
        if np.any(self.lower > self.upper):
            raise ShapeError("constraint bounds cross (l > u)")

    @property
    def size(self) -> int:
        return self.expr.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint(size={self.size})"


def as_expression(value, *, size: int | None = None) -> Expression:
    """Coerce a constant (scalar or vector) or Expression."""
    if isinstance(value, Expression):
        return value
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        if size is None:
            raise ShapeError("cannot infer the size of a scalar constant")
        arr = np.full(size, float(arr))
    if arr.ndim != 1:
        raise ShapeError("constants must be scalars or vectors")
    return Expression({}, arr)


def _as_vector(value, size: int) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(size, float(arr))
    if arr.shape != (size,):
        raise ShapeError(f"bound must be scalar or length {size}")
    return arr.copy()
