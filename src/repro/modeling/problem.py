"""Compiling modeled problems to the QP standard form and solving them.

The lowering is the standard epigraph construction CVXPY performs for
OSQP:

* every ``sum_squares(e)`` term introduces an auxiliary variable
  ``y = e`` (equality rows) contributing ``2 w I`` to its ``P`` block
  (our standard form minimizes ``1/2 x'Px``, so ``w ||e||^2`` becomes
  ``1/2 y'(2wI)y``);
* ``quad_form(x, P)`` contributes ``2 w P`` to the variable's block;
* constraints stack beneath the auxiliary equalities.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..qp import QProblem
from ..solver import OSQPSettings, OSQPSolver
from ..sparse import CSRMatrix, eye
from .expression import Constraint, Expression, Variable
from .objective import Minimize, QuadObjective

__all__ = ["ModelProblem", "CompiledModel"]


class CompiledModel:
    """The QP standard form of a modeled problem plus the variable map."""

    def __init__(self, qp: QProblem, offsets: dict, aux_size: int,
                 constant: float):
        self.qp = qp
        self.offsets = offsets          # Variable -> (start, size)
        self.aux_size = aux_size
        self.constant = constant

    def scatter(self, x: np.ndarray) -> None:
        """Write a QP solution back into the model variables."""
        for var, (start, size) in self.offsets.items():
            var.value = x[start:start + size].copy()


class ModelProblem:
    """A modeled optimization problem: objective + constraint list.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.modeling import Variable, Minimize, sum_squares
    >>> x = Variable(2, name="x")
    >>> prob = ModelProblem(Minimize(sum_squares(x - np.ones(2))),
    ...                     [x >= 0.0])
    >>> result = prob.solve()
    >>> bool(np.allclose(x.value, 1.0, atol=1e-3))
    True
    """

    def __init__(self, objective: Minimize, constraints=()):
        if not isinstance(objective, QuadObjective):
            raise ShapeError("objective must be Minimize(...)")
        self.objective = objective
        self.constraints = list(constraints)
        for con in self.constraints:
            if not isinstance(con, Constraint):
                raise ShapeError(f"not a constraint: {con!r}")
        self.value: float | None = None
        self.status = None

    # ------------------------------------------------------------------
    def _collect_variables(self) -> dict:
        seen: dict[Variable, None] = {}
        for var in self.objective.variables():
            seen.setdefault(var, None)
        for con in self.constraints:
            for var in con.expr.variables:
                seen.setdefault(var, None)
        if not seen:
            raise ShapeError("the problem references no variables")
        offsets = {}
        position = 0
        for var in seen:
            offsets[var] = (position, var.size)
            position += var.size
        return offsets

    def compile(self) -> CompiledModel:
        """Lower to the standard form ``min 1/2 x'Px + q'x, l<=Ax<=u``."""
        offsets = self._collect_variables()
        n_user = sum(size for _, size in offsets.values())

        # Auxiliary variables for sum_squares terms.
        aux_offsets = []
        position = n_user
        for expr, _ in self.objective.square_terms:
            aux_offsets.append((position, expr.size))
            position += expr.size
        n_total = position

        p_rows, p_cols, p_vals = [], [], []
        q = np.zeros(n_total)
        for var, p_mat, weight in self.objective.quad_terms:
            start, _ = offsets[var]
            r, c, v = p_mat.to_coo()
            p_rows.append(r + start)
            p_cols.append(c + start)
            p_vals.append(2.0 * weight * v)
        for (start, size), (_, weight) in zip(aux_offsets,
                                              self.objective.square_terms):
            idx = np.arange(start, start + size)
            p_rows.append(idx)
            p_cols.append(idx)
            p_vals.append(np.full(size, 2.0 * weight))
        for coeff, expr in self.objective.linear_terms:
            for var, block in expr.coeffs.items():
                start, _ = offsets[var]
                q[start:start + var.size] += block.rmatvec(coeff)

        constant = self.objective.constant
        for coeff, expr in self.objective.linear_terms:
            constant += float(np.dot(coeff, expr.const))

        # Constraint rows: aux equalities first, then user constraints.
        a_rows, a_cols, a_vals = [], [], []
        lowers, uppers = [], []
        row = 0
        for (start, size), (expr, _) in zip(aux_offsets,
                                            self.objective.square_terms):
            # e - y = -const  (i.e. y = e)
            for var, block in expr.coeffs.items():
                vstart, _ = offsets[var]
                r, c, v = block.to_coo()
                a_rows.append(r + row)
                a_cols.append(c + vstart)
                a_vals.append(v)
            idx = np.arange(size)
            a_rows.append(idx + row)
            a_cols.append(np.arange(start, start + size))
            a_vals.append(np.full(size, -1.0))
            lowers.append(-expr.const)
            uppers.append(-expr.const)
            row += size
        for con in self.constraints:
            for var, block in con.expr.coeffs.items():
                vstart, _ = offsets[var]
                r, c, v = block.to_coo()
                a_rows.append(r + row)
                a_cols.append(c + vstart)
                a_vals.append(v)
            lowers.append(con.lower - con.expr.const)
            uppers.append(con.upper - con.expr.const)
            row += con.size

        p_mat = CSRMatrix.from_coo(
            np.concatenate(p_rows) if p_rows else np.zeros(0, dtype=int),
            np.concatenate(p_cols) if p_cols else np.zeros(0, dtype=int),
            np.concatenate(p_vals) if p_vals else np.zeros(0),
            (n_total, n_total))
        a_mat = CSRMatrix.from_coo(
            np.concatenate(a_rows) if a_rows else np.zeros(0, dtype=int),
            np.concatenate(a_cols) if a_cols else np.zeros(0, dtype=int),
            np.concatenate(a_vals) if a_vals else np.zeros(0),
            (row, n_total))
        l = np.concatenate(lowers) if lowers else np.zeros(0)
        u = np.concatenate(uppers) if uppers else np.zeros(0)
        qp = QProblem(P=p_mat, q=q, A=a_mat, l=l, u=u, name="modeled")
        return CompiledModel(qp=qp, offsets=offsets,
                             aux_size=n_total - n_user, constant=constant)

    def solve(self, settings: OSQPSettings | None = None):
        """Compile, solve, scatter values; returns the solver result."""
        compiled = self.compile()
        if settings is None:
            settings = OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                    max_iter=20000, polish=True)
        result = OSQPSolver(compiled.qp, settings).solve()
        self.status = result.status
        if result.status.is_optimal:
            compiled.scatter(result.x)
            self.value = result.info.obj_val + compiled.constant
        return result
