"""The hardware generation flow (paper Figure 6).

``Problem structure input -> sparsity encoding -> E_p/E_c optimization
-> HLS code generation -> bitstream build``. Everything up to and
including HLS emission runs here; the bitstream build is the vendor-CAD
stage we cannot run (2-5 hours in the paper), so the flow ends with a
build manifest reporting the modeled f_max, resources and power the
bitstream would achieve.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..customization import ProblemCustomization, customize_problem
from ..hw import estimate_resources, fits_device, fmax_mhz, fpga_power_watts
from ..qp import QProblem
from .hls import (emit_alignment_switch, emit_cvb_tables, emit_mac_tree,
                  emit_spmv_align_function)

__all__ = ["GeneratedDesign", "generate_hardware"]


@dataclass
class GeneratedDesign:
    """All artifacts of one hardware-generation run."""

    customization: ProblemCustomization
    files: dict           # filename -> content
    manifest: dict        # modeled implementation results

    def write_to(self, directory) -> Path:
        """Materialize the design directory; returns its path."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        for filename, content in self.files.items():
            (out / filename).write_text(content)
        (out / "build_manifest.json").write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n")
        return out


def generate_hardware(problem: QProblem, c: int = 16, *,
                      max_structures: int = 4,
                      customization: ProblemCustomization | None = None
                      ) -> GeneratedDesign:
    """Run the Figure 6 flow for one problem.

    Returns the generated HLS sources and CVB tables plus a manifest
    with the modeled f_max/resource/power results standing in for the
    vendor bitstream build.
    """
    if customization is None:
        customization = customize_problem(problem, c,
                                          max_structures=max_structures)
    arch = customization.architecture

    files = {
        "align_acc_cnt_switch.h": emit_alignment_switch(arch),
        "spmv_align.cpp": emit_spmv_align_function(arch),
        "mac_tree.txt": emit_mac_tree(arch),
    }
    for name, matrix_custom in customization.matrices.items():
        files[f"cvb_{name}.h"] = emit_cvb_tables(matrix_custom.cvb, name)

    resources = estimate_resources(arch)
    manifest = {
        "problem": problem.name,
        "architecture": str(arch),
        "c": arch.c,
        "eta": customization.eta,
        "total_ep": customization.total_ep,
        "fmax_mhz": fmax_mhz(arch),
        "power_watts": fpga_power_watts(arch),
        "resources": {"dsp": resources.dsp, "ff": resources.ff,
                      "lut": resources.lut},
        "fits_u50": fits_device(arch),
        "note": ("bitstream build is the vendor-CAD stage "
                 "(2-5 h in the paper); modeled results reported"),
    }
    return GeneratedDesign(customization=customization, files=files,
                           manifest=manifest)
