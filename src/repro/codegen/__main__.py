"""CLI: generate a problem-specific hardware design directory.

Examples::

    python -m repro.codegen --family svm --size 40 --c 16 --out ./design
    python -m repro.codegen --family control --size 12 --structures 3
"""

from __future__ import annotations

import argparse
import sys

from ..problems import FAMILIES, generate
from .flow import generate_hardware


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.codegen",
        description="Run the RSQP hardware-generation flow (Figure 6) "
                    "for a benchmark problem.")
    parser.add_argument("--family", required=True,
                        choices=sorted(FAMILIES),
                        help="benchmark problem family")
    parser.add_argument("--size", type=int, required=True,
                        help="family size parameter")
    parser.add_argument("--c", type=int, default=16,
                        help="datapath width C (power of two)")
    parser.add_argument("--structures", type=int, default=4,
                        help="|S|_target structure budget")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="generated_design",
                        help="output directory")
    args = parser.parse_args(argv)

    problem = generate(args.family, args.size, seed=args.seed)
    print(f"problem {problem.name}: n={problem.n} m={problem.m} "
          f"nnz={problem.nnz}")
    design = generate_hardware(problem, args.c,
                               max_structures=args.structures)
    out = design.write_to(args.out)
    manifest = design.manifest
    print(f"architecture : {manifest['architecture']}")
    print(f"eta          : {manifest['eta']:.3f}")
    print(f"f_max        : {manifest['fmax_mhz']:.0f} MHz")
    print(f"resources    : {manifest['resources']}")
    print(f"fits U50     : {manifest['fits_u50']}")
    print(f"written      : {out} ({len(design.files) + 1} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
