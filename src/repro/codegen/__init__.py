"""HLS code generation and the Figure 6 hardware-generation flow."""

from .flow import GeneratedDesign, generate_hardware
from .hls import (emit_alignment_switch, emit_cvb_tables, emit_mac_tree,
                  emit_spmv_align_function)

__all__ = [
    "GeneratedDesign",
    "generate_hardware",
    "emit_alignment_switch",
    "emit_spmv_align_function",
    "emit_mac_tree",
    "emit_cvb_tables",
]
