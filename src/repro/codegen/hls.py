"""HLS code generation (paper §4.5, Figures 4 and 5).

After the E_p/E_c optimizations, RSQP emits an HLS description of the
customized datapath. We reproduce the generator: the alignment-switch
header of Figure 4 (problem-specific routing between the MAC tree's
variable-width outputs and the C-wide vector buffers), the
``spmv_align`` function of Figure 5 that includes it, a structural
description of the customized MAC tree, and the CVB index-translation /
duplication-control tables derived from the compression map ``M``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["emit_alignment_switch", "emit_spmv_align_function",
           "emit_mac_tree", "emit_cvb_tables"]


def emit_alignment_switch(architecture) -> str:
    """Generate ``align_acc_cnt_switch.h`` (Figure 4's output).

    One outer ``switch`` case per distinct output width of the MAC
    structures; each case rotates the variable-length output pack into
    the ``C``-wide alignment buffer at the running ``align_ptr``.
    """
    widths = architecture.output_widths
    pack_width = architecture.max_outputs
    lines = [
        "// Auto-generated problem-specific routing logic "
        f"for {architecture}.",
        "// Outer switch: output count of the active MAC structure;",
        "// inner switch: current alignment-buffer rotation.",
    ]
    if len(widths) == 1 and widths[0] == 1:
        lines.append("align_out[0] << acc_pack.data[0];")
        return "\n".join(lines) + "\n"
    lines.append("switch (acc_cnt) {")
    for width in widths:
        lines.append(f"case {width}:")
        lines.append("\tswitch (align_ptr){")
        for i in range(pack_width):
            lines.append(f"\tcase {i}:")
            for j in range(width):
                dst = (j + i) % pack_width
                lines.append(
                    f"\t\talign_out[{dst}] << acc_pack.data[{j}];")
            lines.append("\t\tbreak;")
        lines.append("\t}")
        lines.append("\tbreak;")
    lines.append("}")
    lines.append(f"align_ptr = (align_ptr + acc_cnt) % {pack_width};")
    return "\n".join(lines) + "\n"


def emit_spmv_align_function(architecture) -> str:
    """Generate the ``spmv_align`` HLS function (Figure 5)."""
    return f"""// Auto-generated for architecture {architecture}.
void spmv_align(int align_cnt,
                data_stream align_out[ACC_PACK_NUM],
                cnt_pack_stream &acc_cnt_in,
                data_stream &acc_complete_in,
                spmv_pack_stream &spmv_pack_in)
{{
    ap_uint<ALIGN_PTR_BITWIDTH> align_ptr = 0;
align_loop:
    for (int loc = 0; loc < align_cnt; loc++)
    {{
#pragma HLS pipeline II = 1
        u16_t acc_cnt = acc_cnt_in.read();
        spmv_pack_t acc_pack;
        if (acc_cnt == CNT_AS_FADD_FLAG) {{
            acc_pack.data[0] = acc_complete_in.read();
            acc_cnt = 1;
        }}
        else {{
            acc_pack = spmv_pack_in.read();
        }}
#include "align_acc_cnt_switch.h"
    }}
}}
"""


def emit_mac_tree(architecture) -> str:
    """Structural description of the customized MAC tree.

    For every structure, the adder sub-trees and their dedicated output
    taps (Figure 2(b)-(d)); connections shared across structures are
    noted so the generator's area-reuse observation is visible.
    """
    c = architecture.c
    lines = [
        f"// MAC tree for {architecture}: {c} multipliers, "
        f"{c - 1} adders, {architecture.total_outputs} output taps.",
        f"mult lanes[{c}];",
    ]
    for s_idx, structure in enumerate(architecture.structures):
        lines.append(
            f"// structure {s_idx}: pattern '{structure.pattern}' "
            f"({structure.n_outputs} outputs)")
        for seg, (offset, cap) in enumerate(
                zip(structure.lane_offsets, structure.capacities)):
            depth = max(1, int(np.ceil(np.log2(max(cap, 1)))) if cap > 1
                        else 0)
            lines.append(
                f"tap s{s_idx}_o{seg}: reduce(lanes[{offset}.."
                f"{offset + cap - 1}])  // {cap}-input subtree, "
                f"depth {depth}")
    return "\n".join(lines) + "\n"


def emit_cvb_tables(layout, name: str) -> str:
    """CVB configuration: index translation + duplication control.

    ``index_translation[bank][element]`` maps a requested vector element
    to its depth row (Figure 3's 'Indices Translate'); the duplication
    rows list the ``(bank, element)`` writes performed per update cycle
    (Figure 3's 'Duplication Control').
    """
    v = layout.requests
    length, c = v.shape
    lines = [
        f"// CVB tables for matrix {name}: depth {layout.depth} rows, "
        f"vector length {length}, C = {c}, Ec = {layout.ec:.3f}.",
        f"static const int cvb_depth_{name} = {layout.depth};",
    ]
    # Index translation: per bank, the element -> row pairs it reads.
    for bank in range(c):
        elements = np.flatnonzero(v[:, bank])
        pairs = ", ".join(f"{{{int(j)}, {int(layout.location[j])}}}"
                          for j in elements)
        lines.append(
            f"static const addr_pair_t xlate_{name}_bank{bank}[] = "
            f"{{{pairs}}};")
    # Duplication control: writes per update row.
    for row_idx, row in enumerate(layout.duplication_map()):
        writes = ", ".join(f"{{{bank}, {elem}}}" for bank, elem in row)
        lines.append(
            f"static const write_t dup_{name}_row{row_idx}[] = "
            f"{{{writes}}};")
    return "\n".join(lines) + "\n"
