"""The 120-problem benchmark suite (6 families x 20 sizes).

The paper evaluates RSQP on the OSQP benchmark set: 120 problems across
portfolio, lasso, huber, control, svm and eqqp with 10^2..10^6 total
non-zeros. Our default sizes are scaled so a pure-Python reproduction
solves the full suite in minutes rather than days; pass ``scale > 1`` to
grow every family towards the paper's regime (the generators are
size-generic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..qp import QProblem
from .control import generate_control
from .eqqp import generate_eqqp
from .huber import generate_huber
from .lasso import generate_lasso
from .portfolio import generate_portfolio
from .svm import generate_svm

__all__ = ["FAMILIES", "SuiteEntry", "benchmark_suite", "suite_sizes",
           "generate", "PROBLEMS_PER_FAMILY"]

#: Family name -> generator taking (size, seed).
FAMILIES: dict[str, Callable[..., QProblem]] = {
    "portfolio": lambda size, seed: generate_portfolio(size, seed=seed),
    "lasso": lambda size, seed: generate_lasso(size, seed=seed),
    "huber": lambda size, seed: generate_huber(size, seed=seed),
    "control": lambda size, seed: generate_control(size, seed=seed),
    "svm": lambda size, seed: generate_svm(size, seed=seed),
    "eqqp": lambda size, seed: generate_eqqp(size, seed=seed),
}

PROBLEMS_PER_FAMILY = 20

#: Per-family (min_size, max_size) at scale = 1. Chosen so the suite
#: spans ~1e2 to ~5e4 total non-zeros, preserving the paper's 3-decade
#: spread (the paper itself spans 1e2..1e6 on an FPGA testbed).
_SIZE_RANGES: dict[str, tuple[int, int]] = {
    "portfolio": (20, 600),
    "lasso": (10, 240),
    "huber": (10, 200),
    "control": (4, 36),
    "svm": (10, 240),
    "eqqp": (20, 700),
}


@dataclass
class SuiteEntry:
    """One suite problem: family, index within the family, and the QP."""

    family: str
    index: int
    size: int
    problem: QProblem

    @property
    def name(self) -> str:
        return f"{self.family}[{self.index:02d}]"


def suite_sizes(family: str, count: int = PROBLEMS_PER_FAMILY,
                scale: float = 1.0) -> list[int]:
    """Log-spaced instance sizes for one family."""
    lo, hi = _SIZE_RANGES[family]
    hi = max(lo + 1, int(round(hi * scale)))
    sizes = np.unique(np.geomspace(lo, hi, count).round().astype(int))
    # np.unique may merge small sizes; pad from above to keep the count.
    while sizes.size < count:
        extra = sizes[-1] + np.arange(1, count - sizes.size + 1)
        sizes = np.unique(np.concatenate([sizes, extra]))
    return [int(s) for s in sizes[:count]]


def generate(family: str, size: int, seed: int = 0) -> QProblem:
    """Generate one problem instance by family name."""
    if family not in FAMILIES:
        raise KeyError(f"unknown family {family!r}; "
                       f"choose from {sorted(FAMILIES)}")
    return FAMILIES[family](size, seed)


def benchmark_suite(scale: float = 1.0, seed: int = 42,
                    families: list[str] | None = None,
                    count: int = PROBLEMS_PER_FAMILY
                    ) -> Iterator[SuiteEntry]:
    """Yield the full benchmark suite (lazily — problems can be large).

    Parameters
    ----------
    scale:
        Multiplier on the largest instance size of every family.
    seed:
        Base seed; each instance derives its own.
    families:
        Subset of family names (default: all six).
    count:
        Instances per family (default 20, giving 120 total).
    """
    chosen = families if families is not None else list(FAMILIES)
    for family in chosen:
        if family not in FAMILIES:
            raise KeyError(f"unknown family {family!r}")
        for idx, size in enumerate(suite_sizes(family, count, scale)):
            problem = generate(family, size, seed=seed + 1000 * idx)
            yield SuiteEntry(family=family, index=idx, size=size,
                             problem=problem)
