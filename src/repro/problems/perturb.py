"""Structure-preserving numeric perturbation of a QP.

The serving layer's whole value proposition is amortizing one
architecture over many *structurally identical* problems — MPC steps,
regularization sweeps, SQP iterations. This helper manufactures such
workloads from any seed problem: it jitters every numeric array while
provably keeping the sparsity patterns (and therefore the structure
fingerprint) fixed:

* ``P`` is scaled by one positive scalar — positive semi-definiteness
  and the pattern are both preserved;
* ``A``'s stored values are multiplied by per-entry factors bounded
  away from zero — no entry can vanish from the pattern;
* ``q`` receives additive noise;
* bounds move together on equality rows (so ``l == u`` rows stay
  equalities) and outward on inequality rows (so ``l <= u`` holds and
  one-sided rows keep their infinities).
"""

from __future__ import annotations

import numpy as np

from ..qp import QProblem
from ..sparse import CSRMatrix

__all__ = ["perturb_numeric"]


def perturb_numeric(problem: QProblem, seed: int = 0, *,
                    magnitude: float = 0.05) -> QProblem:
    """A structurally identical copy with jittered numeric data.

    Parameters
    ----------
    problem:
        The template QP.
    seed:
        RNG seed; the same (problem, seed) pair is reproducible.
    magnitude:
        Relative size of the jitter; keep well below 1 so the
        multiplicative factors stay positive.
    """
    if not 0 <= magnitude < 0.5:
        raise ValueError("magnitude must be in [0, 0.5)")
    rng = np.random.default_rng(seed)

    p_scale = float(np.exp(magnitude * rng.standard_normal()))
    p_new = CSRMatrix(problem.P.shape, problem.P.data * p_scale,
                      problem.P.indices.copy(), problem.P.indptr.copy(),
                      check=False)

    a_factors = 1.0 + magnitude * rng.uniform(-1.0, 1.0,
                                              size=problem.A.nnz)
    a_new = CSRMatrix(problem.A.shape, problem.A.data * a_factors,
                      problem.A.indices.copy(), problem.A.indptr.copy(),
                      check=False)

    q_span = float(np.max(np.abs(problem.q))) if problem.q.size else 1.0
    q_new = problem.q + magnitude * max(q_span, 1.0) * rng.standard_normal(
        problem.q.shape)

    l_new = problem.l.copy()
    u_new = problem.u.copy()
    eq = problem.equality_mask()
    shift = magnitude * rng.standard_normal(problem.m)
    finite_l = np.isfinite(l_new)
    finite_u = np.isfinite(u_new)
    # Equality rows shift together; inequality rows relax outward.
    l_new[eq] += shift[eq]
    u_new[eq] += shift[eq]
    widen_l = finite_l & ~eq
    widen_u = finite_u & ~eq
    l_new[widen_l] -= np.abs(shift[widen_l])
    u_new[widen_u] += np.abs(shift[widen_u])

    return QProblem(P=p_new, q=q_new, A=a_new, l=l_new, u=u_new,
                    name=problem.name)
