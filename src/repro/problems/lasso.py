"""Lasso regression benchmark family.

The l1-regularized least-squares problem

.. math::

    \\text{minimize } (1/2) \\|Ax - b\\|_2^2 + \\lambda \\|x\\|_1

over ``n`` features and ``m`` data points, written as a QP over
``(x, y, t)`` with residual ``y = Ax - b`` and the usual l1 epigraph
split ``-t \\le x \\le t``:

.. math::

    \\text{minimize } & (1/2) y^T y + \\lambda \\mathbf{1}^T t \\\\
    \\text{s.t. } & y = Ax - b, \\quad -t \\le x \\le t
"""

from __future__ import annotations

import numpy as np

from ..qp import QProblem
from ..sparse import CSRMatrix, eye, from_blocks, random_sparse

__all__ = ["generate_lasso"]


def generate_lasso(n_features: int, *, data_factor: int = 2,
                   density: float = 0.15, seed: int = 0) -> QProblem:
    """Generate a lasso QP with ``n_features`` features.

    ``m = data_factor * n`` data rows; the regularization weight follows
    the OSQP benchmark convention ``lambda = (1/5) ||A' b||_inf``.
    """
    if n_features < 2:
        raise ValueError("lasso needs at least 2 features")
    rng = np.random.default_rng(seed)
    n = int(n_features)
    m = int(data_factor) * n

    a_data = random_sparse(m, n, density, rng)
    x_true = rng.standard_normal(n) * (rng.random(n) < 0.5)
    b = a_data.matvec(x_true) + 0.01 * rng.standard_normal(m)
    lam = 0.2 * float(np.abs(a_data.rmatvec(b)).max())

    # Variables (x, y, t) of sizes (n, m, n).
    p = from_blocks([
        [CSRMatrix.zeros((n, n)), None, None],
        [None, eye(m), None],
        [None, None, CSRMatrix.zeros((n, n))],
    ])
    q = np.concatenate([np.zeros(n), np.zeros(m), lam * np.ones(n)])

    a = from_blocks([
        [a_data, eye(m, scale=-1.0), None],
        [eye(n), None, eye(n, scale=-1.0)],
        [eye(n), None, eye(n)],
    ])
    l = np.concatenate([b, np.full(n, -np.inf), np.zeros(n)])
    u = np.concatenate([b, np.zeros(n), np.full(n, np.inf)])
    return QProblem(P=p, q=q, A=a, l=l, u=u, name=f"lasso_n{n}_m{m}")
