"""Equality-constrained QP benchmark family.

Random strongly convex QP with equality constraints only:

.. math::

    \\text{minimize } (1/2) x^T P x + q^T x \\quad
    \\text{s.t. } A x = b

``P`` is a random sparse diagonally-dominant (hence positive definite)
matrix and ``A`` a random sparse matrix — the *least structured* family
in the benchmark, which is why the paper observes the smallest
customization gains on it (its sparsity string ``g$g$...`` has few
repeated motifs).
"""

from __future__ import annotations

import numpy as np

from ..qp import QProblem
from ..sparse import CSRMatrix, random_sparse

__all__ = ["generate_eqqp", "random_sparse_spd"]


def random_sparse_spd(n: int, density: float, rng) -> CSRMatrix:
    """Sparse symmetric positive-definite matrix via diagonal dominance.

    ``P = L + L' + diag(rowsum(|L + L'|) + 0.1)`` is symmetric and
    strictly diagonally dominant, hence positive definite, without
    needing a sparse matrix-matrix product.
    """
    lower = random_sparse(n, n, density / 2.0, rng).tril(-1)
    r, c, v = lower.to_coo()
    rows = np.concatenate([r, c, np.arange(n)])
    cols = np.concatenate([c, r, np.arange(n)])
    row_abs = np.zeros(n)
    np.add.at(row_abs, r, np.abs(v))
    np.add.at(row_abs, c, np.abs(v))
    vals = np.concatenate([v, v, row_abs + 0.1 + rng.random(n)])
    return CSRMatrix.from_coo(rows, cols, vals, (n, n))


def generate_eqqp(n_vars: int, *, constraint_factor: float = 0.5,
                  density: float = 0.15, seed: int = 0) -> QProblem:
    """Generate an equality-constrained QP with ``n_vars`` variables.

    ``m = constraint_factor * n`` equality rows, consistent by
    construction (``b = A x_feas``).
    """
    if n_vars < 2:
        raise ValueError("eqqp needs at least 2 variables")
    rng = np.random.default_rng(seed)
    n = int(n_vars)
    m = max(1, int(constraint_factor * n))

    p = random_sparse_spd(n, density, rng)
    q = rng.standard_normal(n)
    a = random_sparse(m, n, density, rng)
    x_feas = rng.standard_normal(n)
    b = a.matvec(x_feas)
    return QProblem(P=p, q=q, A=a, l=b, u=b.copy(),
                    name=f"eqqp_n{n}_m{m}")
