"""Huber fitting benchmark family.

Robust regression with the Huber penalty

.. math::

    \\text{minimize } \\sum_{i=1}^{m} \\phi_{\\text{hub}}(a_i^T x - b_i)

is a QP over ``(x, u, r, s)`` (OSQP benchmark formulation):

.. math::

    \\text{minimize } & u^T u + 2 M \\mathbf{1}^T (r + s) \\\\
    \\text{s.t. } & A x - b - u = r - s, \\quad r \\ge 0, \\quad s \\ge 0

where ``u`` captures the quadratic region and ``r, s`` the linear tails.
"""

from __future__ import annotations

import numpy as np

from ..qp import QProblem
from ..sparse import CSRMatrix, eye, from_blocks, random_sparse

__all__ = ["generate_huber"]


def generate_huber(n_features: int, *, data_factor: int = 2,
                   density: float = 0.15, huber_m: float = 1.0,
                   outlier_fraction: float = 0.05,
                   seed: int = 0) -> QProblem:
    """Generate a Huber-fitting QP with ``n_features`` features.

    ``m = data_factor * n`` measurements, a fraction of which are gross
    outliers (the scenario Huber fitting exists for).
    """
    if n_features < 2:
        raise ValueError("huber needs at least 2 features")
    rng = np.random.default_rng(seed)
    n = int(n_features)
    m = int(data_factor) * n

    a_data = random_sparse(m, n, density, rng)
    x_true = rng.standard_normal(n)
    noise = 0.01 * rng.standard_normal(m)
    outliers = rng.random(m) < outlier_fraction
    noise[outliers] += 10.0 * rng.standard_normal(int(outliers.sum()))
    b = a_data.matvec(x_true) + noise

    # Variables (x, u, r, s) of sizes (n, m, m, m).
    zero_n = CSRMatrix.zeros((n, n))
    p = from_blocks([
        [zero_n, None, None, None],
        [None, eye(m, scale=2.0), None, None],
        [None, None, CSRMatrix.zeros((m, m)), None],
        [None, None, None, CSRMatrix.zeros((m, m))],
    ])
    q = np.concatenate([np.zeros(n), np.zeros(m),
                        2.0 * huber_m * np.ones(2 * m)])

    a = from_blocks([
        [a_data, eye(m, scale=-1.0), eye(m, scale=-1.0), eye(m)],
        [None, None, eye(m), None],
        [None, None, None, eye(m)],
    ])
    l = np.concatenate([b, np.zeros(2 * m)])
    u = np.concatenate([b, np.full(2 * m, np.inf)])
    return QProblem(P=p, q=q, A=a, l=l, u=u, name=f"huber_n{n}_m{m}")
