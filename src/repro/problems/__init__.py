"""QP benchmark problem generators (the paper's 6 application domains)."""

from .control import generate_control, mpc_matrices
from .eqqp import generate_eqqp, random_sparse_spd
from .huber import generate_huber
from .lasso import generate_lasso
from .perturb import perturb_numeric
from .portfolio import generate_portfolio
from .suite import (FAMILIES, PROBLEMS_PER_FAMILY, SuiteEntry,
                    benchmark_suite, generate, suite_sizes)
from .svm import generate_svm

__all__ = [
    "generate_portfolio",
    "generate_lasso",
    "generate_huber",
    "generate_control",
    "generate_svm",
    "generate_eqqp",
    "random_sparse_spd",
    "mpc_matrices",
    "FAMILIES",
    "PROBLEMS_PER_FAMILY",
    "SuiteEntry",
    "benchmark_suite",
    "generate",
    "suite_sizes",
    "perturb_numeric",
]
