"""Optimal control (linear MPC) benchmark family.

Finite-horizon LQR with state and input box constraints (OSQP benchmark
formulation). Over the horizon ``T`` with dynamics
``x_{k+1} = A_d x_k + B_d u_k`` from the measured state ``x_0``:

.. math::

    \\text{minimize } & \\sum_{k=0}^{T-1}
        (x_{k+1}^T Q x_{k+1} + u_k^T R u_k) \\\\
    \\text{s.t. } & x_{k+1} = A_d x_k + B_d u_k, \\quad
    \\underline{x} \\le x_k \\le \\bar{x}, \\quad
    \\underline{u} \\le u_k \\le \\bar{u}

The decision vector stacks ``(x_1..x_T, u_0..u_{T-1})``, producing the
block-banded constraint matrix whose sparsity string is the uniform
``dddd...`` motif of Figure 2(g) ("Optimal Control Problem").
"""

from __future__ import annotations

import numpy as np

from ..qp import QProblem
from ..sparse import CSRMatrix, diag, eye, from_blocks

__all__ = ["generate_control", "mpc_matrices"]


def mpc_matrices(nx: int, nu: int, rng):
    """Random stable dynamics ``(A_d, B_d)`` for an ``nx``-state plant."""
    a_d = rng.standard_normal((nx, nx)) * (rng.random((nx, nx)) < 0.7)
    radius = max(np.abs(np.linalg.eigvals(a_d)))
    if radius > 0:
        a_d *= 0.95 / max(radius, 0.95)  # keep the plant (near) stable
    b_d = rng.standard_normal((nx, nu)) * (rng.random((nx, nu)) < 0.7)
    return a_d, b_d


def generate_control(n_states: int, *, n_inputs: int | None = None,
                     horizon: int = 10, seed: int = 0) -> QProblem:
    """Generate an MPC QP for a plant with ``n_states`` states.

    Parameters
    ----------
    n_states:
        State dimension ``nx``.
    n_inputs:
        Input dimension ``nu``; defaults to ``max(1, nx // 2)``.
    horizon:
        Prediction horizon ``T``.
    """
    if n_states < 2:
        raise ValueError("control needs at least 2 states")
    rng = np.random.default_rng(seed)
    nx = int(n_states)
    nu = int(n_inputs) if n_inputs is not None else max(1, nx // 2)
    t_hor = int(horizon)

    a_d, b_d = mpc_matrices(nx, nu, rng)
    x0 = rng.standard_normal(nx) * 0.5

    q_diag = rng.random(nx) + 0.5
    r_diag = 0.1 * (rng.random(nu) + 0.5)

    # Decision vector: (x_1..x_T, u_0..u_{T-1}).
    p_blocks = [diag(q_diag) for _ in range(t_hor)]
    p_blocks += [diag(r_diag) for _ in range(t_hor)]
    p = from_blocks([[p_blocks[i] if i == j else None
                      for j in range(2 * t_hor)]
                     for i in range(2 * t_hor)])
    n_var = t_hor * (nx + nu)
    q = np.zeros(n_var)

    a_csr = CSRMatrix.from_dense(a_d)
    b_csr = CSRMatrix.from_dense(b_d)

    # Dynamics rows: x_{k+1} - A_d x_k - B_d u_k = 0 (k = 0 uses x0).
    grid = []
    for k in range(t_hor):
        row = [None] * (2 * t_hor)
        row[k] = eye(nx)  # +x_{k+1}
        if k > 0:
            row[k - 1] = -1.0 * a_csr  # -A_d x_k
        row[t_hor + k] = -1.0 * b_csr  # -B_d u_k
        grid.append(row)
    dynamics = from_blocks(grid)
    rhs0 = a_d @ x0
    l_dyn = np.concatenate([rhs0, np.zeros((t_hor - 1) * nx)])
    u_dyn = l_dyn.copy()

    # Box constraints on all states and inputs.
    bounds = eye(n_var)
    x_lim, u_lim = 5.0, 0.5
    l_box = np.concatenate([np.full(t_hor * nx, -x_lim),
                            np.full(t_hor * nu, -u_lim)])
    u_box = -l_box

    a_full = from_blocks([[dynamics], [bounds]])
    l_full = np.concatenate([l_dyn, l_box])
    u_full = np.concatenate([u_dyn, u_box])
    return QProblem(P=p, q=q, A=a_full, l=l_full, u=u_full,
                    name=f"control_nx{nx}_nu{nu}_T{t_hor}")
