"""Support vector machine benchmark family.

Soft-margin linear SVM via the hinge-loss QP over ``(x, t)`` (OSQP
benchmark formulation):

.. math::

    \\text{minimize } & (1/2) x^T x + \\lambda \\mathbf{1}^T t \\\\
    \\text{s.t. } & t \\ge \\text{diag}(b) A x + 1, \\quad t \\ge 0

Half the samples are drawn around ``+1/n`` means, half around
``-1/n``, giving the two-class geometry whose sparsity string is the
long ``ddd...`` run of Figure 2(g).
"""

from __future__ import annotations

import numpy as np

from ..qp import QProblem
from ..sparse import CSRMatrix, eye, from_blocks

__all__ = ["generate_svm"]


def generate_svm(n_features: int, *, data_factor: int = 2,
                 density: float = 0.15, lam: float = 1.0,
                 seed: int = 0) -> QProblem:
    """Generate an SVM QP with ``n_features`` features.

    ``m = data_factor * n`` samples with labels split evenly between the
    two classes.
    """
    if n_features < 2:
        raise ValueError("svm needs at least 2 features")
    rng = np.random.default_rng(seed)
    n = int(n_features)
    m = int(data_factor) * n
    m += m % 2  # even split between the classes

    labels = np.concatenate([np.ones(m // 2), -np.ones(m // 2)])
    # Class-dependent means, sparse features.
    mask = rng.random((m, n)) < density
    features = (labels[:, None] / n) + rng.standard_normal((m, n))
    dense = np.where(mask, features, 0.0)
    a_data = CSRMatrix.from_dense(dense)

    # Variables (x, t) of sizes (n, m).
    p = from_blocks([
        [eye(n), None],
        [None, CSRMatrix.zeros((m, m))],
    ])
    q = np.concatenate([np.zeros(n), lam * np.ones(m)])

    # diag(b) A x - t <= -1  and  t >= 0.
    a = from_blocks([
        [a_data.scale_rows(labels), eye(m, scale=-1.0)],
        [None, eye(m)],
    ])
    l = np.concatenate([np.full(m, -np.inf), np.zeros(m)])
    u = np.concatenate([-np.ones(m), np.full(m, np.inf)])
    return QProblem(P=p, q=q, A=a, l=l, u=u, name=f"svm_n{n}_m{m}")
