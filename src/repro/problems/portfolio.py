"""Portfolio optimization benchmark family.

Markowitz mean-variance allocation over ``n`` assets with a ``k``-factor
risk model (OSQP benchmark formulation):

.. math::

    \\text{maximize } \\mu^T x - \\gamma (x^T \\Sigma x), \\qquad
    \\Sigma = F F^T + D

Introducing ``y = F^T x`` gives the sparse QP over ``(x, y)``:

.. math::

    \\text{minimize } & \\gamma (x^T D x + y^T y) - \\mu^T x \\\\
    \\text{s.t. } & y = F^T x, \\quad \\mathbf{1}^T x = 1, \\quad x \\ge 0

whose sparsity string shows the paper's portfolio motif: dense-ish
factor rows followed by long runs of identical single-entry rows
(Figure 2(g), ``...bbbb...aaaa...``).
"""

from __future__ import annotations

import numpy as np

from ..qp import QProblem
from ..sparse import (CSRMatrix, diag, eye, from_blocks, random_sparse)

__all__ = ["generate_portfolio"]


def generate_portfolio(n_assets: int, *, factors: int | None = None,
                       gamma: float = 1.0, density: float = 0.5,
                       seed: int = 0) -> QProblem:
    """Generate a portfolio QP with ``n_assets`` assets.

    Parameters
    ----------
    n_assets:
        Number of assets ``n`` (>= 2).
    factors:
        Number of risk factors ``k``; defaults to ``max(2, n // 10)``.
    gamma:
        Risk-aversion parameter.
    density:
        Density of the factor-loading matrix ``F``.
    seed:
        Seed for the problem data.
    """
    if n_assets < 2:
        raise ValueError("portfolio needs at least 2 assets")
    rng = np.random.default_rng(seed)
    n = int(n_assets)
    k = int(factors) if factors is not None else max(2, n // 10)

    f = random_sparse(n, k, density, rng)
    d_diag = rng.random(n) * np.sqrt(k)
    mu = rng.standard_normal(n)

    # P = 2 gamma * blkdiag(D, I_k)
    p = from_blocks([
        [diag(2.0 * gamma * d_diag), None],
        [None, eye(k, scale=2.0 * gamma)],
    ])
    q = np.concatenate([-mu, np.zeros(k)])

    # Constraints: [F' -I; 1' 0; I 0] over (x, y).
    a = from_blocks([
        [f.transpose(), eye(k, scale=-1.0)],
        [CSRMatrix.from_dense(np.ones((1, n))), None],
        [eye(n), None],
    ])
    l = np.concatenate([np.zeros(k), [1.0], np.zeros(n)])
    u = np.concatenate([np.zeros(k), [1.0], np.full(n, np.inf)])
    return QProblem(P=p, q=q, A=a, l=l, u=u,
                    name=f"portfolio_n{n}_k{k}")
