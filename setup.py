"""Setup shim.

The environment has no `wheel` package, so PEP 660 editable installs
(`pip install -e .` with pyproject-only metadata) cannot build. This shim
lets pip fall back to the legacy `setup.py develop` path offline. All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
