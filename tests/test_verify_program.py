"""Pass 1 (program verifier): compiler output is accepted unchanged,
seeded defects are rejected with located diagnostics."""

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.hw.compiler import compile_osqp_program
from repro.hw.isa import (BINARY_SCALAR_OPS, Control, DataTransfer, Loop,
                          Program, ScalarOp, ScalarOpKind, SpMV, VecDup,
                          VectorOp, VectorOpKind)
from repro.verify import (ProgramContract, Severity, accelerator_contract,
                          verify_program)

#: Minimal contract for hand-built programs.
CONTRACT = ProgramContract(hbm=frozenset({"v", "w"}),
                           scalars=frozenset({"s", "thr"}),
                           matrices=frozenset({"A"}))


def fresh_compiled():
    return compile_osqp_program(12, 8, max_admm_iter=50, max_pcg_iter=20)


def flat_instructions(items):
    for item in items:
        if isinstance(item, Loop):
            yield from flat_instructions(item.body)
        else:
            yield item


def binary_scalar_ops(program):
    return [op for op in flat_instructions(program.instructions)
            if isinstance(op, ScalarOp) and op.op in BINARY_SCALAR_OPS]


class TestAcceptance:
    def test_compiler_program_is_clean(self):
        report = verify_program(fresh_compiled().program)
        assert report.ok
        assert not report.warnings
        assert not report.diagnostics

    def test_accelerator_contract_matches_download(self):
        contract = accelerator_contract()
        assert "q" in contract.hbm
        assert "sigma" in contract.scalars
        assert contract.matrices == frozenset({"P", "A", "At"})


class TestSeededDefects:
    def test_dropped_init_is_use_before_def(self):
        compiled = fresh_compiled()
        program = compiled.program
        # Drop the prologue load of "q" — the objective vector every
        # ADMM iteration reads.
        drop = next(i for i, item in enumerate(program.instructions)
                    if isinstance(item, DataTransfer)
                    and item.direction == "load" and item.name == "q")
        del program.instructions[drop]
        report = verify_program(program)
        assert not report.ok
        assert "use-before-def" in {d.code for d in report.errors}

    def test_diagnostic_carries_generating_site(self):
        compiled = fresh_compiled()
        program = compiled.program
        drop = next(i for i, item in enumerate(program.instructions)
                    if isinstance(item, DataTransfer)
                    and item.direction == "load" and item.name == "q")
        del program.instructions[drop]
        report = verify_program(program)
        sites = [d.location.site for d in report.errors
                 if d.location.site]
        assert sites, "expected at least one located diagnostic"
        assert any(site.startswith("compiler.") for site in sites)
        # The path names the position inside the loop nest.
        assert any(d.location.path for d in report.errors)

    def test_scalar_arity_mutation_is_caught(self):
        compiled = fresh_compiled()
        victim = binary_scalar_ops(compiled.program)[0]
        object.__setattr__(victim, "src2", None)  # bypass __post_init__
        report = verify_program(compiled.program)
        assert "scalar-arity" in {d.code for d in report.errors}

    def test_fusion_raw_hazard_swapped_dup(self):
        program = Program([
            DataTransfer("load", "v"),
            VecDup("v", "A"),
            SpMV("A", "A", "out"),
        ])
        assert verify_program(program, CONTRACT).ok
        # Swap: the SpMV now reads the bank before the VecDup that
        # populates it, inside one fusion window.
        program.instructions[1], program.instructions[2] = \
            program.instructions[2], program.instructions[1]
        report = verify_program(program, CONTRACT)
        codes = {d.code for d in report.errors}
        assert "fusion-raw-hazard" in codes

    def test_spmv_reading_vector_buffer_is_rejected(self):
        program = Program([
            DataTransfer("load", "v"),
            SpMV("A", "v", "out"),
        ])
        report = verify_program(program, CONTRACT)
        assert "spmv-src-not-in-cvb" in {d.code for d in report.errors}

    def test_unknown_cvb_bank(self):
        program = Program([
            DataTransfer("load", "v"),
            VecDup("v", "B"),
        ])
        report = verify_program(program, CONTRACT)
        assert "unknown-cvb-bank" in {d.code for d in report.errors}

    def test_control_outside_loop(self):
        program = Program([Control("s", "thr")])
        report = verify_program(program, CONTRACT)
        assert "control-outside-loop" in {d.code for d in report.errors}


class TestLoopAnalysis:
    def test_unreachable_loop_body_warns(self):
        program = Program([Loop(body=[ScalarOp(ScalarOpKind.MOV, "x", "s")],
                                max_iter=0, name="dead")])
        report = verify_program(program, CONTRACT)
        assert "unreachable-code" in {d.code for d in report.warnings}
        assert report.ok  # warning, not error

    def test_loop_without_exit_warns(self):
        program = Program([Loop(body=[ScalarOp(ScalarOpKind.MOV, "x", "s")],
                                max_iter=3, name="spin")])
        report = verify_program(program, CONTRACT)
        assert "no-loop-exit" in {d.code for d in report.warnings}

    def test_static_exit_condition_warns(self):
        # Neither the residual nor the threshold is recomputed inside
        # the body: the Control either fires immediately or never.
        program = Program([Loop(
            body=[VectorOp(VectorOpKind.COPY, "w2", ("w",)),
                  Control("s", "thr")],
            max_iter=3, name="stuck")])
        report = verify_program(program, CONTRACT)
        assert "static-exit-condition" in {d.code for d in report.warnings}

    def test_defs_after_exit_do_not_escape_loop(self):
        # "late" is only defined after the Control, so a trip that
        # exits at the Control never wrote it; reading it after the
        # loop is a use-before-def.
        program = Program([
            Loop(body=[ScalarOp(ScalarOpKind.MOV, "r", "s"),
                       Control("r", "thr"),
                       ScalarOp(ScalarOpKind.MOV, "late", "s")],
                 max_iter=3, name="l"),
            ScalarOp(ScalarOpKind.MOV, "use", "late"),
        ])
        report = verify_program(program, CONTRACT)
        errors = [d for d in report.errors if d.code == "use-before-def"]
        assert errors
        assert "'late'" in errors[0].message

    def test_defs_before_exit_do_escape_loop(self):
        program = Program([
            Loop(body=[ScalarOp(ScalarOpKind.MOV, "early", "s"),
                       ScalarOp(ScalarOpKind.MOV, "r", "s"),
                       Control("r", "thr")],
                 max_iter=3, name="l"),
            ScalarOp(ScalarOpKind.MOV, "use", "early"),
        ])
        assert verify_program(program, CONTRACT).ok


class TestMutationProperty:
    @given(st.data())
    @hyp_settings(max_examples=20, deadline=None)
    def test_any_scalar_arity_mutation_is_caught(self, data):
        compiled = fresh_compiled()
        candidates = binary_scalar_ops(compiled.program)
        victim = data.draw(st.sampled_from(candidates))
        object.__setattr__(victim, "src2", None)
        report = verify_program(compiled.program)
        assert "scalar-arity" in {d.code for d in report.errors}

    @pytest.mark.parametrize("bank", ["P", "A", "At"])
    def test_dropping_first_vecdup_of_each_bank_is_caught(self, bank):
        """Removing a bank's first-ever duplication leaves its first
        SpMV reading an undefined CVB bank."""
        compiled = fresh_compiled()

        def drop_first(items):
            for i, item in enumerate(items):
                if isinstance(item, VecDup) and item.cvb == bank:
                    del items[i]
                    return True
                if isinstance(item, Loop) and drop_first(item.body):
                    return True
            return False

        assert drop_first(compiled.program.instructions)
        report = verify_program(compiled.program)
        assert not report.ok
        assert "use-before-def" in {d.code for d in report.errors}


class TestSeverity:
    def test_severity_ordering_and_labels(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.ERROR.label() == "error"

    def test_report_render_mentions_counts(self):
        program = Program([Control("s", "thr")])
        report = verify_program(program, CONTRACT)
        text = report.render()
        assert "error" in text
        assert "control-outside-loop" in text
