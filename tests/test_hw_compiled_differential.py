"""Differential tests: compiled backend vs the interpreter oracle.

The compiled executor's contract is *bit-identical machine state and
identical cycle accounting* on every error-free run. These tests drive
randomly generated ISA programs, real compiled solver programs, and
random SpMV schedules through both backends and compare exhaustively.
Error runs only guarantee the same exception type (a lowered block that
faults mid-loop after its first iteration has already deferred its
charges — documented in :mod:`repro.hw.compiled`).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.customization import (baseline_architecture, build_cvb,
                                 customize_problem, schedule,
                                 search_architecture)
from repro.encoding import encode_matrix
from repro.exceptions import SimulationError
from repro.hw import (Control, DataTransfer, Loop, Machine, MatrixResource,
                      Program, ScalarOp, ScalarOpKind, SpMV, VecDup,
                      VectorOp, VectorOpKind)
from repro.hw.accelerator import RSQPAccelerator
from repro.hw.compiled import CompiledExecutor
from repro.hw.spmv_engine import simulate_spmv
from repro.problems import generate
from repro.sparse import CSRMatrix

from helpers import random_dense

N = 6
VECS = ("v0", "v1", "v2", "v3")
SCALARS = ("s0", "s1", "s2", "s3")
CVBS = ("M", "W")


def fresh_machine(seed):
    rng = np.random.default_rng(seed)
    mat = CSRMatrix.from_dense(random_dense(rng, N, N, 0.5))
    mat2 = CSRMatrix.from_dense(random_dense(rng, N, N, 0.3))
    machine = Machine(4, {
        "M": MatrixResource(name="M", matrix=mat, spmv_cycles=9,
                            cvb_depth=3),
        "W": MatrixResource(name="W", matrix=mat2, spmv_cycles=5,
                            cvb_depth=2),
    })
    for name in VECS:
        machine.vb[name] = rng.standard_normal(N)
    for k, name in enumerate(SCALARS):
        machine.set_scalar(name, float(rng.standard_normal() + k))
    machine.hbm["v0"] = rng.standard_normal(N)
    return machine


def build_instruction(draw_op, p1, p2, p3):
    """Map small hypothesis-drawn integers onto one ISA instruction."""
    vec = VECS[p1 % len(VECS)]
    vec2 = VECS[p2 % len(VECS)]
    scal = SCALARS[p1 % len(SCALARS)]
    scal2 = SCALARS[p2 % len(SCALARS)]
    alpha = (scal, 1.0, -1.0, 0.5)[p3 % 4]
    if draw_op == 0:
        kind = (ScalarOpKind.ADD, ScalarOpKind.SUB, ScalarOpKind.MUL,
                ScalarOpKind.MAX)[p3 % 4]
        return ScalarOp(kind, SCALARS[p3 % len(SCALARS)], scal, scal2)
    if draw_op == 1:
        return ScalarOp(ScalarOpKind.MOV, scal2, scal)
    if draw_op == 2:
        return VectorOp(VectorOpKind.AXPBY, vec2, (vec, vec2),
                        alpha=alpha, beta=(1.0, -1.0, scal2, 2.0)[p2 % 4])
    if draw_op == 3:
        return VectorOp(VectorOpKind.SCALE_ADD, vec, (vec, vec2),
                        alpha=alpha)
    if draw_op == 4:
        return VectorOp(VectorOpKind.EWMUL, vec2, (vec, vec2))
    if draw_op == 5:
        return VectorOp(VectorOpKind.COPY, vec2, (vec,))
    if draw_op == 6:
        return VectorOp(VectorOpKind.DOT, scal, (vec, vec2))
    if draw_op == 7:
        return VecDup(vec, CVBS[p3 % len(CVBS)])
    if draw_op == 8:
        # SpMV from a CVB bank; faults (bank not yet written) must
        # raise the same error type in both backends.
        bank = CVBS[p3 % len(CVBS)]
        return SpMV(bank, bank, vec)
    if draw_op == 9:
        return DataTransfer("load", "v0")
    return DataTransfer("store", vec)


def run_both(program, seed, jit=False):
    """Execute on two fresh identical machines; return both machines."""
    mi = fresh_machine(seed)
    mc = fresh_machine(seed)
    executor = CompiledExecutor(mc, jit=jit)
    err_i = err_c = None
    try:
        mi.run(program)
    except Exception as exc:  # noqa: BLE001 - compared by type below
        err_i = exc
    try:
        executor.run(program)
        # second run exercises the fused (non-bind) path
        if err_i is None:
            mi.run(program)
            executor.run(program)
    except Exception as exc:  # noqa: BLE001
        err_c = exc
    assert type(err_i) is type(err_c), (err_i, err_c)
    return mi, mc, err_i


def assert_states_equal(mi, mc):
    # tobytes() compares true bit patterns: NaN payloads and signed
    # zeros included, which array_equal would mis-handle.
    for space in ("vb", "cvb", "hbm"):
        di, dc = getattr(mi, space), getattr(mc, space)
        assert di.keys() == dc.keys()
        for name in di:
            assert di[name].shape == dc[name].shape, (space, name)
            assert di[name].tobytes() == dc[name].tobytes(), (space, name)
    assert mi.scalars.keys() == mc.scalars.keys()
    for name in mi.scalars:
        assert (np.float64(mi.scalars[name]).tobytes()
                == np.float64(mc.scalars[name]).tobytes()), name
    si, sc = mi.stats, mc.stats
    assert si.total_cycles == sc.total_cycles
    assert si.by_class == sc.by_class
    assert si.instructions_executed == sc.instructions_executed
    assert si.loop_iterations == sc.loop_iterations


class TestRandomPrograms:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**31 - 1),
           st.lists(st.tuples(st.integers(0, 10), st.integers(0, 7),
                              st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=14),
           st.booleans())
    def test_random_program_differential(self, seed, specs, with_loop):
        instrs = [build_instruction(*spec) for spec in specs]
        if with_loop:
            split = len(instrs) // 2
            body = instrs[split:] + [Control("s0", "s1")]
            program = Program(instrs[:split] + [Loop(body, max_iter=3,
                                                     name="l")])
        else:
            program = Program(instrs)
        mi, mc, err = run_both(program, seed, jit=False)
        if err is None:
            assert_states_equal(mi, mc)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1),
           st.lists(st.tuples(st.integers(0, 10), st.integers(0, 7),
                              st.integers(0, 7), st.integers(0, 7)),
                    min_size=2, max_size=10))
    def test_random_program_differential_jit(self, seed, specs):
        """Same property with chunk fusion enabled (fixed-size pool so
        the generated C sources stay few and cache-hot)."""
        instrs = [build_instruction(*spec) for spec in specs]
        program = Program([Loop(instrs + [Control("s0", "s1")],
                                max_iter=3, name="l")])
        mi, mc, err = run_both(program, seed, jit=True)
        if err is None:
            assert_states_equal(mi, mc)


class TestFusedPatterns:
    def test_pcg_like_body_bitwise(self):
        """A PCG-shaped body: VecDup/SpMV/AXPBY/DOT runs fuse into C
        chunks; results and accounting must still match the oracle."""
        body = [
            VecDup("v0", "M"),
            SpMV("M", "M", "v1"),
            VectorOp(VectorOpKind.EWMUL, "v2", ("v1", "v0")),
            VectorOp(VectorOpKind.AXPBY, "v1", ("v1", "v2"),
                     alpha=1.0, beta="s2"),
            VectorOp(VectorOpKind.DOT, "s0", ("v1", "v1")),
            VectorOp(VectorOpKind.SCALE_ADD, "v0", ("v0", "v1"),
                     alpha="s0"),
            VectorOp(VectorOpKind.DOT, "s3", ("v0", "v2")),
            Control("s3", "s1"),
        ]
        program = Program([Loop(body, max_iter=5, name="pcg")])
        mi, mc, err = run_both(program, seed=7, jit=True)
        assert err is None
        assert_states_equal(mi, mc)

    def test_dot_feeding_fused_consumer(self):
        """A DOT result consumed by a later op in the same fused run
        must read the fresh in-chunk value, not the stale register."""
        instrs = [
            VectorOp(VectorOpKind.DOT, "s0", ("v0", "v1")),
            VectorOp(VectorOpKind.SCALE_ADD, "v2", ("v2", "v1"),
                     alpha="s0"),
            VectorOp(VectorOpKind.DOT, "s0", ("v2", "v2")),
        ]
        program = Program(list(instrs))
        mi, mc, err = run_both(program, seed=11, jit=True)
        assert err is None
        assert_states_equal(mi, mc)

    def test_jit_off_matches_interpreter(self):
        program = Program([
            VecDup("v1", "W"),
            SpMV("W", "W", "v3"),
            VectorOp(VectorOpKind.AXPBY, "v3", ("v3", "v1"),
                     alpha=0.25, beta=-1.0),
        ])
        mi, mc, err = run_both(program, seed=3, jit=False)
        assert err is None
        assert_states_equal(mi, mc)


class TestSolveDifferential:
    @pytest.mark.parametrize("family,size", [("eqqp", 16), ("lasso", 10),
                                             ("control", 4)])
    def test_full_solve_bitwise(self, family, size):
        problem = generate(family, size, seed=0)
        cust = customize_problem(problem, 8)
        res = {}
        for backend in ("interpret", "compiled"):
            acc = RSQPAccelerator(problem, customization=cust,
                                  backend=backend)
            res[backend] = (acc.run(), acc.machine.stats)
        ri, si = res["interpret"]
        rc, sc = res["compiled"]
        assert np.array_equal(ri.x, rc.x)
        assert np.array_equal(ri.y, rc.y)
        assert np.array_equal(ri.z, rc.z)
        assert ri.total_cycles == rc.total_cycles
        assert si.by_class == sc.by_class
        assert si.instructions_executed == sc.instructions_executed
        assert si.loop_iterations == sc.loop_iterations

    @pytest.mark.parametrize("family,size", [("eqqp", 16), ("lasso", 10),
                                             ("control", 4)])
    def test_full_pdqp_solve_bitwise(self, family, size):
        from repro.hw.pdqp import PDQPAccelerator
        problem = generate(family, size, seed=0)
        cust = customize_problem(problem, 8)
        res = {}
        for backend in ("interpret", "compiled"):
            acc = PDQPAccelerator(problem, customization=cust,
                                  backend=backend)
            res[backend] = (acc.run(), acc.machine.stats)
        ri, si = res["interpret"]
        rc, sc = res["compiled"]
        assert ri.algorithm == rc.algorithm == "pdqp"
        assert np.array_equal(ri.x, rc.x)
        assert np.array_equal(ri.y, rc.y)
        assert np.array_equal(ri.z, rc.z)
        assert ri.total_cycles == rc.total_cycles
        assert si.by_class == sc.by_class
        assert si.instructions_executed == sc.instructions_executed
        assert si.loop_iterations == sc.loop_iterations


class TestBatchDifferential:
    """Batched lockstep execution vs per-request solo solves.

    The batch contract is the strongest one in the repo: every lane of
    a B-wide run must be *bitwise* identical — x, y, z, convergence
    flag, iteration counts and effective per-instance cycles — to the
    solo accelerator run on that lane's problem alone, for any B.
    """

    def _lane_problems(self, family, size, batch):
        template = generate(family, size, seed=0)
        from repro.problems import perturb_numeric
        return [template] + [perturb_numeric(template, seed=s)
                             for s in range(1, batch)]

    def _assert_lanes_match_solo(self, probs, cust, settings, algorithm,
                                 solo_cls):
        from repro.batch import BatchAccelerator
        solos = [solo_cls(p, customization=cust, settings=settings,
                          backend="compiled") for p in probs]
        solo_results = [acc.run() for acc in solos]
        batch = BatchAccelerator(probs, cust, settings,
                                 compiled=solos[0].compiled,
                                 algorithm=algorithm)
        bres = batch.run()
        assert bres.batch == len(probs)
        assert bres.lane_errors == [None] * len(probs)
        for sr, br in zip(solo_results, bres.results):
            assert sr.x.tobytes() == br.x.tobytes()
            assert sr.y.tobytes() == br.y.tobytes()
            assert sr.z.tobytes() == br.z.tobytes()
            assert sr.converged == br.converged
            assert sr.admm_iterations == br.admm_iterations
            assert sr.pcg_iterations == br.pcg_iterations
            assert sr.total_cycles == br.total_cycles
            assert sr.restarts == br.restarts
        # The virtual fleet's wall clock is one lockstep stream: it can
        # never beat the slowest lane, and per-instance cycles amortize.
        assert bres.wall_cycles >= max(r.total_cycles
                                       for r in solo_results)
        assert bres.lane_cycles == tuple(r.total_cycles
                                         for r in solo_results)

    @pytest.mark.parametrize("batch", [1, 2, 8, 32])
    def test_admm_batch_bitwise_vs_solo(self, batch):
        probs = self._lane_problems("eqqp", 16, batch)
        cust = customize_problem(probs[0], 8)
        from repro.solver import OSQPSettings
        self._assert_lanes_match_solo(probs, cust, OSQPSettings(), "admm",
                                      RSQPAccelerator)

    @pytest.mark.parametrize("family,size,batch",
                             [("lasso", 10, 8), ("control", 4, 8)])
    def test_admm_batch_bitwise_other_families(self, family, size, batch):
        probs = self._lane_problems(family, size, batch)
        cust = customize_problem(probs[0], 8)
        from repro.solver import OSQPSettings
        self._assert_lanes_match_solo(probs, cust, OSQPSettings(), "admm",
                                      RSQPAccelerator)

    @pytest.mark.parametrize("batch", [2, 8])
    def test_pdqp_batch_bitwise_vs_solo(self, batch):
        from repro.hw.pdqp import PDQPAccelerator
        from repro.solver import OSQPSettings
        from repro.solver.algorithms import get_algorithm
        probs = self._lane_problems("control", 4, batch)
        cust = customize_problem(probs[0], 8)
        settings = get_algorithm("pdqp").coerce_settings(OSQPSettings())
        self._assert_lanes_match_solo(probs, cust, settings, "pdqp",
                                      PDQPAccelerator)


class TestSpMVEngineDifferential:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([4, 8, 16]),
           st.booleans())
    def test_random_schedule_bitwise(self, seed, c, searched):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 24))
        n = int(rng.integers(2, 24))
        mat = CSRMatrix.from_dense(
            random_dense(rng, m, n, float(rng.uniform(0.05, 0.7))))
        enc = encode_matrix(mat, c)
        arch = (search_architecture([enc], c).architecture if searched
                else baseline_architecture(c))
        sched = schedule(enc, arch)
        layout = build_cvb(sched)
        x = rng.standard_normal(n)
        yi, ti = simulate_spmv(sched, layout, x, backend="interpret")
        yc, tc = simulate_spmv(sched, layout, x, backend="compiled")
        assert np.array_equal(yi, yc)
        assert ti.input_cycles == tc.input_cycles
        assert ti.outputs_per_cycle == tc.outputs_per_cycle
        assert ti.accumulate_events == tc.accumulate_events
        assert ti.bank_reads == tc.bank_reads
        assert ti.alignment_rows == tc.alignment_rows
        np.testing.assert_allclose(yc, mat.matvec(x), atol=1e-10)

    def test_kernel_cached_on_schedule(self):
        rng = np.random.default_rng(0)
        mat = CSRMatrix.from_dense(random_dense(rng, 8, 8, 0.4))
        enc = encode_matrix(mat, 4)
        sched = schedule(enc, baseline_architecture(4))
        layout = build_cvb(sched)
        simulate_spmv(sched, layout, rng.standard_normal(8))
        kernels = sched._engine_kernels
        assert len(kernels) == 1
        simulate_spmv(sched, layout, rng.standard_normal(8))
        assert sched._engine_kernels is kernels and len(kernels) == 1

    def test_corrupt_layout_detected_compiled(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 10, 8, 0.5))
        enc = encode_matrix(mat, 8)
        sched = schedule(enc, baseline_architecture(8))
        layout = build_cvb(sched)
        used = np.flatnonzero(layout.location >= 0)
        if used.size >= 2 and layout.location[used[0]] != \
                layout.location[used[1]]:
            layout.location[used[0]] = layout.location[used[1]]
            with pytest.raises(SimulationError):
                simulate_spmv(sched, layout, rng.standard_normal(8),
                              backend="compiled")

    def test_backend_validated(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 4, 4, 0.5))
        enc = encode_matrix(mat, 4)
        sched = schedule(enc, baseline_architecture(4))
        layout = build_cvb(sched)
        with pytest.raises(ValueError, match="backend"):
            simulate_spmv(sched, layout, np.zeros(4), backend="fpga")


class TestScalarOpValidation:
    def test_binary_requires_src2(self):
        with pytest.raises(ValueError, match="binary"):
            ScalarOp(ScalarOpKind.ADD, "d", "a")

    def test_unary_forbids_src2(self):
        with pytest.raises(ValueError, match="unary"):
            ScalarOp(ScalarOpKind.SQRT, "d", "a", "b")

    def test_machine_rejects_smuggled_malformed_op(self):
        """An instance that dodges __post_init__ still fails with a
        clear SimulationError inside the machine, not a bare TypeError."""
        instr = object.__new__(ScalarOp)
        object.__setattr__(instr, "op", ScalarOpKind.ADD)
        object.__setattr__(instr, "dst", "d")
        object.__setattr__(instr, "src1", "a")
        object.__setattr__(instr, "src2", None)
        m = Machine(4, {})
        m.set_scalar("a", 1.0)
        with pytest.raises(SimulationError, match="binary"):
            m.run(Program([instr]))


class TestLoopAccounting:
    def test_loop_charges_nothing_in_both_backends(self):
        body = [ScalarOp(ScalarOpKind.MOV, "s1", "s0"),
                Control("s0", "s2")]
        program = Program([Loop(body, max_iter=4, name="l")])
        mi, mc, err = run_both(program, seed=5, jit=False)
        assert err is None
        assert_states_equal(mi, mc)
        # Each iteration charges 1 ScalarOp + 1 Control and nothing for
        # the Loop node itself (run_both executes error-free programs
        # twice, so the totals cover two runs).
        iters = mi.stats.loop_iterations["l"]
        assert iters >= 2  # at least one iteration per run
        assert mi.stats.instructions_executed == 2 * iters
        assert mi.stats.total_cycles == 2 * iters


class TestFaultHookEquivalence:
    """The fault-injection hooks must be invisible when inactive: an
    empty plan yields no injector at all, and an armed-but-silent
    injector leaves both backends bit-identical to unarmed runs."""

    def spmv_program(self):
        return Program([
            DataTransfer("load", "v0"),
            VecDup("v0", "M"),
            SpMV("M", "M", "v1"),
            VecDup("v1", "W"),
            SpMV("W", "W", "v3"),
        ])

    def test_empty_plan_produces_no_injector(self):
        from repro.faults import FaultPlan
        plan = FaultPlan()
        for request in range(4):
            for attempt in range(3):
                assert plan.injector_for(request, attempt) is None

    def test_silent_injector_is_bitwise_invisible_in_both_backends(self):
        from repro.faults import Fault, FaultInjector
        program = self.spmv_program()
        base_i, base_c, err = run_both(program, seed=9)
        assert err is None
        armed_i = fresh_machine(9)
        armed_c = fresh_machine(9)
        # One injector per machine: op counters are per-run state.
        armed_i.injector = FaultInjector(
            [Fault(kind="mac-flip", op_index=10 ** 9)])
        armed_c.injector = FaultInjector(
            [Fault(kind="mac-flip", op_index=10 ** 9)])
        executor = CompiledExecutor(armed_c)
        armed_i.run(program)
        executor.run(program)
        armed_i.run(program)
        executor.run(program)
        assert not armed_i.injector.events
        assert not armed_c.injector.events
        assert_states_equal(armed_i, armed_c)
        assert_states_equal(base_i, armed_i)
        assert_states_equal(base_c, armed_c)

    def test_armed_injector_fires_identically_in_both_backends(self):
        from repro.faults import Fault, FaultInjector
        program = self.spmv_program()
        faults = [Fault(kind="mac-flip", op_index=1, element=2, bit=33),
                  Fault(kind="hbm-read", op_index=0, element=1, bit=12),
                  Fault(kind="cvb-read", op_index=0, element=0, bit=7)]
        mi = fresh_machine(3)
        mc = fresh_machine(3)
        mi.injector = FaultInjector(list(faults))
        mc.injector = FaultInjector(list(faults))
        executor = CompiledExecutor(mc)
        mi.run(program)
        executor.run(program)
        assert mi.injector.events == mc.injector.events
        assert len(mi.injector.events) == 3
        assert_states_equal(mi, mc)


class TestFusedLoopErrors:
    """DIV/SQRT guards inside the whole-loop fused body.

    The generated-program strategies never emit DIV or SQRT, so the
    fused error returns (rc 1 / rc 2) need explicit coverage: the
    fused tier must raise the same SimulationError type the
    interpreter raises, from a loop where fusion is verifiably
    engaged.
    """

    def _drive(self, body_op, arm):
        """Run clean twice (second run engages fusion), then ``arm``
        the failure and run again; returns the error per backend."""
        program = Program([Loop(body=[body_op, Control("s2", "s3")],
                                max_iter=4, name="l")])
        errors = {}
        for mode in ("interp", "compiled"):
            machine = fresh_machine(0)
            machine.set_scalar("s0", 4.0)
            machine.set_scalar("s1", 2.0)
            machine.set_scalar("s3", -1e18)  # Control never exits
            if mode == "compiled":
                executor = CompiledExecutor(machine, jit=True)
                runner = executor.run
            else:
                runner = machine.run
            runner(program)
            runner(program)
            if mode == "compiled":
                # The second clean run must have gone through the
                # fused whole-loop body, or this test proves nothing.
                assert any(entry[1] for entry in
                           executor._loop_fused.values())
            arm(machine)
            with pytest.raises(SimulationError) as exc_info:
                runner(program)
            errors[mode] = exc_info.value
        assert type(errors["interp"]) is type(errors["compiled"])
        return errors

    def test_fused_division_by_zero(self):
        op = ScalarOp(ScalarOpKind.DIV, "s2", "s0", "s1")
        errors = self._drive(op, lambda m: m.set_scalar("s1", 0.0))
        assert "division" in str(errors["compiled"])

    def test_fused_negative_sqrt(self):
        op = ScalarOp(ScalarOpKind.SQRT, "s2", "s0")
        errors = self._drive(op, lambda m: m.set_scalar("s0", -1.0))
        assert "sqrt" in str(errors["compiled"])
