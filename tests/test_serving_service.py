"""SolverService end-to-end: correctness vs the reference solver,
cache tiers, worker pool modes, fallback policy and metrics."""

import numpy as np
import pytest

from repro.hw.accelerator import RSQPResult
from repro.hw.machine import ExecutionStats
from repro.problems import (generate_control, generate_lasso, generate_svm,
                            perturb_numeric)
from repro.serving import SolverService, WorkerPool
from repro.serving.service import (TIER_BUILD, TIER_DISK, TIER_FALLBACK,
                                   TIER_HIT)
from repro.solver import OSQPSettings, solve

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)


def service(**kwargs):
    kwargs.setdefault("settings", SETTINGS)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("mode", "serial")
    return SolverService(**kwargs)


class TestCorrectness:
    @pytest.mark.parametrize("make_problem", [
        lambda: generate_svm(10, seed=0),
        lambda: generate_control(4, horizon=5, seed=1),
        lambda: generate_lasso(8, seed=2),
    ])
    def test_matches_reference_solver(self, make_problem):
        prob = make_problem()
        with service() as svc:
            res = svc.solve(prob)
        assert res.converged
        ref = solve(prob, SETTINGS)
        assert ref.status.is_optimal
        assert np.isclose(prob.objective(res.x), ref.info.obj_val,
                          rtol=1e-2, atol=1e-3)
        assert prob.primal_residual(res.x) < 1e-2

    def test_warm_solve_matches_cold_solve(self):
        base = generate_lasso(8, seed=3)
        variant = perturb_numeric(base, seed=9)
        with service() as svc:
            cold = svc.solve(base)
            warm = svc.solve(variant)       # same structure: cache hit
        assert cold.record.tier == TIER_BUILD
        assert warm.record.tier == TIER_HIT
        assert warm.converged
        ref = solve(variant, SETTINGS)
        assert np.isclose(variant.objective(warm.x), ref.info.obj_val,
                          rtol=1e-2, atol=1e-3)

    def test_result_exposes_typed_stats(self):
        with service() as svc:
            res = svc.solve(generate_svm(10, seed=1))
        assert isinstance(res.raw, RSQPResult)
        assert isinstance(res.raw.stats, ExecutionStats)
        assert res.raw.stats.by_class["SpMV"] > 0

    def test_warm_start_accepted(self):
        prob = generate_svm(10, seed=2)
        with service() as svc:
            first = svc.solve(prob)
            again = svc.solve(prob, warm_start=(first.x, first.y))
        assert again.converged
        assert again.record.admm_iterations <= first.record.admm_iterations


class TestCacheTiers:
    def test_repeated_structure_hits(self):
        base = generate_lasso(8, seed=0)
        problems = [base] + [perturb_numeric(base, seed=s)
                             for s in range(4)]
        with service() as svc:
            results = svc.solve_batch(problems)
            stats = svc.cache_stats()
        tiers = [r.record.tier for r in results]
        assert tiers == [TIER_BUILD] + [TIER_HIT] * 4
        assert stats.hits == 4 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.8)

    def test_distinct_structures_build_separately(self):
        with service() as svc:
            a = svc.solve(generate_lasso(8, seed=0))
            b = svc.solve(generate_svm(10, seed=0))
        assert a.record.tier == b.record.tier == TIER_BUILD
        assert a.record.fingerprint_key != b.record.fingerprint_key

    def test_disk_tier_skips_search(self, tmp_path):
        path = tmp_path / "arch.json"
        prob = generate_lasso(8, seed=1)
        with service(cache_path=path) as svc:
            first = svc.solve(prob)
        assert first.record.tier == TIER_BUILD
        assert path.exists()

        with service(cache_path=path) as svc:
            again = svc.solve(prob)
            stats = svc.cache_stats()
        assert again.record.tier == TIER_DISK
        assert stats.disk_hits == 1
        assert again.record.architecture == first.record.architecture
        # Rebuilding from the persisted decision skips the LZW search,
        # so the customize stage is much cheaper than the full build.
        assert again.record.customize_seconds < first.record.customize_seconds

    def test_eviction_keeps_spec(self):
        a = generate_lasso(8, seed=0)
        b = generate_svm(10, seed=0)
        with service(cache_capacity=1) as svc:
            svc.solve(a)
            svc.solve(b)       # evicts a's artifact, keeps its spec
            res = svc.solve(a)
            stats = svc.cache_stats()
        assert res.record.tier == TIER_DISK
        assert stats.evictions >= 1

    def test_records_ordered_by_request(self):
        base = generate_lasso(8, seed=0)
        with service() as svc:
            svc.solve_batch([base, perturb_numeric(base, seed=1)])
            records = svc.records()
        assert [r.request_id for r in records] == [0, 1]
        assert all(r.total_seconds > 0 for r in records)


class TestPoolModes:
    def test_thread_mode_batch(self):
        base = generate_lasso(8, seed=0)
        problems = [base] + [perturb_numeric(base, seed=s)
                             for s in range(3)]
        with service(mode="thread", workers=2) as svc:
            results = svc.solve_batch(problems)
        assert all(r.converged for r in results)
        refs = [solve(p, SETTINGS) for p in problems]
        for res, ref, prob in zip(results, refs, problems):
            assert np.isclose(prob.objective(res.x), ref.info.obj_val,
                              rtol=1e-2, atol=1e-3)

    def test_thread_mode_concurrent_same_structure_builds_once(self):
        base = generate_lasso(8, seed=0)
        problems = [perturb_numeric(base, seed=s) for s in range(4)]
        with service(mode="thread", workers=4) as svc:
            results = svc.solve_batch(problems)
            stats = svc.cache_stats()
        assert all(r.converged for r in results)
        # Per-key build lock: racing workers share one build.
        assert len(svc.cache) == 1
        assert stats.hits + stats.misses == 4

    @pytest.mark.slow
    def test_process_mode_smoke(self):
        base = generate_lasso(6, seed=0)
        with service(mode="process", workers=2) as svc:
            first = svc.solve(base)
            second = svc.solve(perturb_numeric(base, seed=1))
        assert first.converged and second.converged
        assert second.record.tier == TIER_HIT

    def test_pool_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            WorkerPool(mode="fiber")
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_serial_pool_propagates_exceptions(self):
        pool = WorkerPool(mode="serial")
        future = pool.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result()


class TestFallbackPolicy:
    def test_cold_request_answered_by_reference(self):
        prob = generate_lasso(8, seed=0)
        with service(cold_policy="fallback", mode="thread",
                     workers=2) as svc:
            first = svc.solve(prob)
            assert first.record.tier == TIER_FALLBACK
            assert first.backend == "reference"
            assert first.converged
            svc.drain()                     # background build completes
            second = svc.solve(prob)
        assert second.record.tier == TIER_HIT
        assert second.backend == "rsqp"
        assert np.isclose(prob.objective(first.x),
                          prob.objective(second.x), rtol=1e-2, atol=1e-3)

    def test_fallback_counted_in_metrics(self):
        prob = generate_svm(10, seed=0)
        with service(cold_policy="fallback", mode="thread",
                     workers=2) as svc:
            svc.solve(prob)
            svc.drain()
            snap = svc.metrics_snapshot()
        assert snap["counters"]["serving_fallback_solves_total"] == 1

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            SolverService(cold_policy="punt")


class TestLifecycleAndMetrics:
    def test_metrics_snapshot_schema(self):
        base = generate_lasso(8, seed=0)
        with service() as svc:
            svc.solve_batch([base, perturb_numeric(base, seed=1)])
            snap = svc.metrics_snapshot()
        counters = snap["counters"]
        assert counters["serving_requests_total"] == 2
        assert counters["serving_cache_hits_total"] == 1
        assert counters["serving_cache_misses_total"] == 1
        for name in ("serving_setup_seconds", "serving_solve_seconds",
                     "serving_admm_iterations"):
            assert snap["histograms"][name]["count"] == 2
        assert snap["cache"]["hit_rate"] == pytest.approx(0.5)

    def test_amortization_report_mentions_tiers(self):
        base = generate_lasso(8, seed=0)
        with service() as svc:
            svc.solve_batch([base, perturb_numeric(base, seed=1)])
            report = svc.amortization_report()
        assert "cache hit rate" in report
        assert "cold setup" in report and "warm setup" in report
        assert "amortization" in report

    def test_unknown_request_id(self):
        with service() as svc:
            with pytest.raises(KeyError):
                svc.result(999)

    def test_closed_service_rejects_submit(self):
        svc = service()
        svc.close()
        with pytest.raises(RuntimeError):
            svc.submit(generate_lasso(8, seed=0))

    def test_close_is_idempotent(self):
        svc = service()
        svc.solve(generate_lasso(8, seed=0))
        svc.close()
        svc.close()
