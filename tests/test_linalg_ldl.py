"""Tests for the elimination tree and LDL^T factorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FactorizationError
from repro.linalg import (UNKNOWN, etree, ldl_factor, ldl_solve,
                          ldl_symbolic, postorder)
from repro.sparse import CSCMatrix

from helpers import random_spd_dense


def upper_csc(dense):
    return CSCMatrix.from_dense(np.triu(dense))


def dense_ldl(a):
    """Reference dense LDL^T via unpivoted elimination."""
    n = a.shape[0]
    l = np.eye(n)
    d = np.zeros(n)
    a = a.astype(float).copy()
    for k in range(n):
        d[k] = a[k, k]
        l[k + 1:, k] = a[k + 1:, k] / d[k]
        a[k + 1:, k + 1:] -= np.outer(l[k + 1:, k], a[k, k + 1:])
        a[k, k + 1:] = 0.0
        a[k + 1:, k] = 0.0
    return l, d


class TestEtree:
    def test_diagonal_matrix_is_forest_of_roots(self):
        parent, counts = etree(upper_csc(np.diag([1.0, 2.0, 3.0])))
        assert np.all(parent == UNKNOWN)
        assert np.all(counts == 0)

    def test_arrow_matrix(self):
        # Arrow matrix: last row/col dense -> every node parents to n-1.
        n = 5
        a = np.eye(n)
        a[:, -1] = 1.0
        a[-1, :] = 1.0
        parent, counts = etree(upper_csc(a))
        assert np.all(parent[:-1] == n - 1)
        assert parent[-1] == UNKNOWN
        np.testing.assert_array_equal(counts, [1, 1, 1, 1, 0])

    def test_tridiagonal_chain(self):
        n = 6
        a = np.diag(np.full(n, 4.0)) + np.diag(np.ones(n - 1), 1) \
            + np.diag(np.ones(n - 1), -1)
        parent, counts = etree(upper_csc(a))
        np.testing.assert_array_equal(parent[:-1], np.arange(1, n))
        assert parent[-1] == UNKNOWN
        np.testing.assert_array_equal(counts, [1] * (n - 1) + [0])

    def test_missing_diagonal_rejected(self):
        mat = CSCMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 1.0]]))
        with pytest.raises(FactorizationError):
            etree(mat)

    def test_lower_entry_rejected(self):
        mat = CSCMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(FactorizationError):
            etree(mat)

    def test_postorder_children_before_parents(self, rng):
        a = random_spd_dense(rng, 10, 0.4)
        parent, _ = etree(upper_csc(a))
        order = postorder(parent)
        seen = set()
        for node in order:
            for child in np.flatnonzero(parent == node):
                assert child in seen
            seen.add(int(node))
        assert len(seen) == 10


class TestLDL:
    def test_factor_matches_dense_ldl(self, rng):
        a = random_spd_dense(rng, 8, 0.5)
        factor = ldl_factor(upper_csc(a))
        l_ref, d_ref = dense_ldl(a)
        np.testing.assert_allclose(factor.l_dense(), l_ref, atol=1e-10)
        np.testing.assert_allclose(factor.d, d_ref, atol=1e-10)

    def test_reconstruction(self, rng):
        a = random_spd_dense(rng, 12, 0.3)
        factor = ldl_factor(upper_csc(a))
        l = factor.l_dense()
        np.testing.assert_allclose(l @ np.diag(factor.d) @ l.T, a, atol=1e-9)

    def test_solve(self, rng):
        a = random_spd_dense(rng, 15, 0.3)
        b = rng.standard_normal(15)
        factor = ldl_factor(upper_csc(a))
        np.testing.assert_allclose(factor.solve(b), np.linalg.solve(a, b),
                                   atol=1e-8)

    def test_quasidefinite_kkt(self, rng):
        # KKT-style indefinite but quasi-definite matrix (OSQP eq. 2).
        n, m = 5, 3
        p = random_spd_dense(rng, n, 0.4)
        amat = rng.standard_normal((m, n))
        sigma, rho = 1e-6, 0.1
        kkt = np.block([[p + sigma * np.eye(n), amat.T],
                        [amat, -np.eye(m) / rho]])
        factor = ldl_factor(upper_csc(kkt))
        assert factor.num_positive_d == n
        b = rng.standard_normal(n + m)
        np.testing.assert_allclose(factor.solve(b), np.linalg.solve(kkt, b),
                                   atol=1e-7)

    def test_symbolic_reuse_across_values(self, rng):
        a = random_spd_dense(rng, 9, 0.4)
        upper = upper_csc(a)
        symbolic = ldl_symbolic(upper)
        f1 = ldl_factor(upper, symbolic)
        # Same pattern, different values.
        upper2 = CSCMatrix(upper.shape, upper.data * 2.0, upper.indices,
                           upper.indptr)
        f2 = ldl_factor(upper2, symbolic)
        np.testing.assert_allclose(f2.d, 2.0 * f1.d, atol=1e-10)

    def test_structurally_zero_pivot_rejected(self):
        # A zero first diagonal is dropped by from_dense, so the etree
        # detects the missing diagonal entry.
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(FactorizationError):
            ldl_factor(upper_csc(a))

    def test_explicit_zero_pivot_rejected(self):
        upper = CSCMatrix((2, 2), [0.0, 1.0, 1.0], [0, 0, 1], [0, 1, 3])
        with pytest.raises(FactorizationError):
            ldl_factor(upper)

    def test_zero_pivot_later_column(self):
        # Second pivot becomes exactly zero: [[1, 1], [1, 1]].
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(FactorizationError):
            ldl_factor(upper_csc(a))

    def test_rhs_length_checked(self, rng):
        a = random_spd_dense(rng, 4, 0.5)
        factor = ldl_factor(upper_csc(a))
        with pytest.raises(FactorizationError):
            factor.solve(np.zeros(5))

    @given(st.integers(2, 12), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_solve_property(self, n, seed):
        rng = np.random.default_rng(seed)
        a = random_spd_dense(rng, n, 0.5)
        b = rng.standard_normal(n)
        x = ldl_factor(upper_csc(a)).solve(b)
        np.testing.assert_allclose(a @ x, b, atol=1e-7 * max(1, np.abs(b).max()))
