"""Tests for the experiment harness: runner, figure producers, report."""

import numpy as np
import pytest

from repro.experiments import (ProblemRecord, choose_width,
                               fig07_problem_dimensions, fig08_kkt_fraction,
                               fig09_eta_improvement,
                               fig10_customization_speedup,
                               fig11_speedup_over_mkl, fig12_solver_runtime,
                               fig13_power_efficiency, format_table,
                               run_problem, run_suite, summarize_records,
                               table2_platforms, table3_tradeoff)
from repro.problems import generate
from repro.solver import OSQPSettings


@pytest.fixture(scope="module")
def records():
    """A small but real experiment run (2 sizes x 6 families)."""
    return run_suite(count=2, settings=OSQPSettings(max_iter=4000))


class TestRunner:
    def test_choose_width_scales_with_problem(self):
        assert choose_width(100) == 16
        assert choose_width(10_000) == 32
        assert choose_width(1_000_000) == 64

    def test_run_problem_record_fields(self):
        prob = generate("svm", 16, seed=0)
        record = run_problem(prob, "svm")
        assert record.family == "svm"
        assert record.nnz == prob.nnz
        assert record.admm_iterations > 0
        assert record.pcg_iterations > 0
        assert record.fpga_custom_seconds > 0
        assert record.customization_speedup >= 1.0
        assert 0 < record.eta_baseline <= record.eta_custom <= 1.0

    def test_run_suite_covers_families(self, records):
        assert len(records) == 12
        assert {r.family for r in records} == {
            "portfolio", "lasso", "huber", "control", "svm", "eqqp"}

    def test_records_internally_consistent(self, records):
        for r in records:
            assert r.fpga_custom_seconds <= r.fpga_baseline_seconds * 1.001
            assert np.isclose(r.customization_speedup,
                              r.fpga_baseline_seconds
                              / r.fpga_custom_seconds)
            assert 0.0 <= r.cpu_kkt_fraction <= 1.0


class TestFigures:
    def test_fig07_rows(self):
        rows = fig07_problem_dimensions(count=1)
        assert len(rows) == 6
        assert all(row["nnz"] > 0 and row["n"] > 0 for row in rows)

    def test_record_figures_have_one_row_per_record(self, records):
        for producer in (fig08_kkt_fraction, fig09_eta_improvement,
                         fig10_customization_speedup,
                         fig11_speedup_over_mkl, fig12_solver_runtime,
                         fig13_power_efficiency):
            rows = producer(records)
            assert len(rows) == len(records)

    def test_fig11_consistency_with_fig12(self, records):
        f11 = fig11_speedup_over_mkl(records)
        f12 = fig12_solver_runtime(records)
        for r11, r12 in zip(f11, f12):
            assert np.isclose(r11["customization"],
                              r12["mkl_s"] / r12["customization_s"])

    def test_table2(self):
        rows = table2_platforms()
        assert [row["device"] for row in rows] == ["FPGA", "CPU", "GPU"]

    def test_table3_row_count_and_baseline(self):
        prob = generate("svm", 24, seed=0)
        rows = table3_tradeoff(prob, candidates=("16{e}", "16{16a1e}"))
        assert len(rows) == 2
        assert rows[0]["delta_eta"] == 0.0
        assert rows[1]["delta_eta"] > 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="X")

    def test_summarize(self, records):
        summary = summarize_records(records)
        assert summary["problems"] == len(records)
        assert summary["customization_speedup_min"] >= 1.0
        assert set(summary["mean_customization_speedup_by_family"]) == {
            "portfolio", "lasso", "huber", "control", "svm", "eqqp"}

    def test_summarize_empty(self):
        assert summarize_records([]) == {}


class TestPaperShapes:
    """The headline claims of §5, asserted on the mini suite."""

    def test_customization_always_helps(self, records):
        assert all(r.customization_speedup >= 1.0 for r in records)

    def test_eqqp_benefits_least(self, records):
        by_family = {}
        for r in records:
            by_family.setdefault(r.family, []).append(r.eta_improvement)
        means = {f: np.mean(v) for f, v in by_family.items()}
        assert means["eqqp"] == min(means.values())

    def test_fpga_power_flat_gpu_variable(self, records):
        fpga = [r.fpga_power_watts for r in records]
        gpu = [r.gpu_power_watts for r in records]
        assert max(fpga) - min(fpga) < 1.0      # flat ~19 W
        assert all(44.0 <= w <= 126.0 for w in gpu)

    def test_fpga_beats_gpu_in_efficiency(self, records):
        assert all(r.fpga_throughput_per_watt > r.gpu_throughput_per_watt
                   for r in records)


class TestPersistence:
    def test_json_roundtrip(self, records, tmp_path):
        from repro.experiments import load_records, save_records
        path = save_records(records, tmp_path / "records.json")
        loaded = load_records(path)
        assert len(loaded) == len(records)
        for a, b in zip(records, loaded):
            assert a.name == b.name
            assert a.nnz == b.nnz
            assert a.customization_speedup == pytest.approx(
                b.customization_speedup)

    def test_figures_work_on_loaded_records(self, records, tmp_path):
        from repro.experiments import (load_records, save_records,
                                       fig09_eta_improvement)
        path = save_records(records, tmp_path / "r.json")
        rows = fig09_eta_improvement(load_records(path))
        assert len(rows) == len(records)

    def test_version_mismatch_rejected(self):
        from repro.experiments import records_from_json
        with pytest.raises(ValueError):
            records_from_json('{"schema_version": 99, "records": []}')

    def test_unknown_fields_rejected(self):
        from repro.experiments import records_from_json
        bad = ('{"schema_version": 1, "records": [{"bogus": 1}]}')
        with pytest.raises(ValueError):
            records_from_json(bad)


class TestRunnerAcceleratorConsistency:
    def test_runner_fpga_model_matches_accelerator_estimate(self):
        """The runner's analytic FPGA time and the accelerator's own
        cost model must be the same function of iteration counts."""
        from repro.customization import customize_problem
        from repro.experiments.runner import _fpga_seconds
        from repro.hw import RSQPAccelerator, fmax_mhz

        prob = generate("svm", 16, seed=2)
        custom = customize_problem(prob, 16)
        acc = RSQPAccelerator(prob, customization=custom,
                              settings=OSQPSettings(max_iter=100))
        admm, pcg = 37, 215
        runner_seconds = _fpga_seconds(prob, custom, admm, pcg)
        acc_cycles = acc.estimate_cycles(admm, pcg)
        acc_seconds = acc_cycles / (fmax_mhz(custom.architecture) * 1e6)
        assert runner_seconds == pytest.approx(acc_seconds, rel=1e-12)
