"""repro.bench: BENCH_*.json discovery, headline lifting, merging."""

import json

from repro.bench import discover, headline, merge, render
from repro.bench.__main__ import main


def _write(root, name, payload):
    (root / name).write_text(json.dumps(payload))


class TestAggregation:
    def test_discover_strips_prefix_and_sorts(self, tmp_path):
        _write(tmp_path, "BENCH_ZETA.json", {})
        _write(tmp_path, "BENCH_ALPHA.json", {})
        (tmp_path / "OTHER.json").write_text("{}")
        names = [name for name, _ in discover(tmp_path)]
        assert names == ["alpha", "zeta"]

    def test_headline_lifts_scalars_only(self):
        payload = {"speedup": 7.5, "floor": 5, "ok": True,
                   "mode": "auto", "cases": [{"x": 1}],
                   "config": {"n": 3}}
        assert headline(payload) == {"speedup": 7.5, "floor": 5,
                                     "ok": True, "mode": "auto"}

    def test_merge_counts_cases(self, tmp_path):
        _write(tmp_path, "BENCH_A.json",
               {"speedup": 2.0, "cases": [{}, {}, {}]})
        _write(tmp_path, "BENCH_B.json", {"floor": 5})
        merged = merge(tmp_path)
        assert set(merged["reports"]) == {"a", "b"}
        assert merged["case_counts"] == {"a": 3, "b": 0}
        assert merged["headline"]["a"] == {"speedup": 2.0}

    def test_render_summary_and_cases(self, tmp_path):
        _write(tmp_path, "BENCH_A.json",
               {"speedup": 2.5, "cases": [{"family": "eqqp",
                                           "x": 1.0}]})
        text = render(tmp_path, cases=True)
        assert "speedup=2.5" in text
        assert "eqqp" in text

    def test_render_without_reports(self, tmp_path):
        assert "no BENCH_*.json" in render(tmp_path)


class TestCli:
    def test_exit_codes_and_json_output(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path)]) == 1
        _write(tmp_path, "BENCH_A.json", {"speedup": 3.0, "cases": []})
        out = tmp_path / "merged.json"
        assert main(["--root", str(tmp_path),
                     "--json", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "Benchmark reports" in captured
        merged = json.loads(out.read_text())
        assert merged["headline"]["a"]["speedup"] == 3.0
