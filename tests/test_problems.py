"""Tests for the benchmark problem generators and the 120-problem suite."""

import numpy as np
import pytest

from repro.problems import (FAMILIES, PROBLEMS_PER_FAMILY, benchmark_suite,
                            generate, generate_control, generate_eqqp,
                            generate_huber, generate_lasso,
                            generate_portfolio, generate_svm,
                            random_sparse_spd, suite_sizes)
from repro.solver import OSQPSettings, solve


FAST = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=6000)


class TestPortfolio:
    def test_shapes(self):
        prob = generate_portfolio(30, factors=5)
        assert prob.n == 35           # assets + factors
        assert prob.m == 5 + 1 + 30   # factor rows + budget + long-only

    def test_solves_and_satisfies_budget(self):
        prob = generate_portfolio(20, seed=1)
        res = solve(prob, FAST)
        assert res.status.is_optimal
        n = 20
        x = res.x[:n]
        assert np.isclose(x.sum(), 1.0, atol=1e-3)   # budget constraint
        assert np.all(x >= -1e-4)                    # long-only

    def test_factor_consistency_at_solution(self):
        prob = generate_portfolio(20, factors=3, seed=2)
        res = solve(prob, FAST)
        assert res.status.is_optimal
        # y = F' x holds at the solution (first 3 constraint rows).
        ax = prob.A.matvec(res.x)
        np.testing.assert_allclose(ax[:3], 0.0, atol=1e-3)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_portfolio(1)


class TestLasso:
    def test_shapes(self):
        prob = generate_lasso(10, data_factor=2)
        assert prob.n == 10 + 20 + 10  # x, y, t

    def test_solution_minimizes_lasso_objective(self):
        prob = generate_lasso(8, seed=3)
        res = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                       max_iter=10000))
        assert res.status.is_optimal
        n, m = 8, 16
        x, y, t = res.x[:n], res.x[n:n + m], res.x[n + m:]
        # Epigraph variables tight: t ~ |x|.
        np.testing.assert_allclose(t, np.abs(x), atol=1e-2)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_lasso(1)


class TestHuber:
    def test_shapes(self):
        prob = generate_huber(10, data_factor=2)
        assert prob.n == 10 + 20 * 3  # x, u, r, s

    def test_solves(self):
        prob = generate_huber(8, seed=4)
        res = solve(prob, FAST)
        assert res.status.is_optimal
        n, m = 8, 16
        r = res.x[n + m:n + 2 * m]
        s = res.x[n + 2 * m:]
        assert np.all(r >= -1e-3) and np.all(s >= -1e-3)

    def test_outliers_absorbed_by_linear_tail(self):
        prob = generate_huber(8, outlier_fraction=0.3, seed=5)
        res = solve(prob, FAST)
        assert res.status.is_optimal
        n, m = 8, 16
        r, s = res.x[n + m:n + 2 * m], res.x[n + 2 * m:]
        # With 30% gross outliers some residuals must leave the quadratic
        # region, i.e. r + s > 0 somewhere.
        assert (r + s).max() > 1e-3


class TestSVM:
    def test_shapes(self):
        prob = generate_svm(10, data_factor=2)
        assert prob.n == 10 + 20

    def test_hinge_constraints_hold(self):
        prob = generate_svm(8, seed=6)
        res = solve(prob, FAST)
        assert res.status.is_optimal
        assert prob.primal_residual(res.x) < 1e-3
        t = res.x[8:]
        assert np.all(t >= -1e-4)


class TestControl:
    def test_shapes(self):
        prob = generate_control(4, n_inputs=2, horizon=5)
        assert prob.n == 5 * (4 + 2)
        assert prob.m == 5 * 4 + 5 * (4 + 2)  # dynamics + boxes

    def test_dynamics_satisfied_at_solution(self):
        prob = generate_control(4, n_inputs=2, horizon=5, seed=7)
        res = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                       max_iter=10000))
        assert res.status.is_optimal
        # Dynamics rows are equalities; residual there must be tiny.
        ax = prob.A.matvec(res.x)
        n_dyn = 5 * 4
        np.testing.assert_allclose(ax[:n_dyn], prob.l[:n_dyn], atol=1e-3)

    def test_input_bounds_respected(self):
        prob = generate_control(4, horizon=5, seed=8)
        res = solve(prob, FAST)
        assert res.status.is_optimal
        nu = 2
        inputs = res.x[5 * 4:]
        assert np.all(np.abs(inputs) <= 0.5 + 1e-3)

    def test_banded_structure(self):
        # The constraint matrix is block-banded: row k touches at most
        # the state blocks k-1, k and input block k.
        prob = generate_control(6, horizon=8)
        dense = prob.A.to_dense()
        nx = 6
        dyn = dense[:8 * nx]
        # First block-row must not touch x_2.. columns.
        assert np.all(dyn[:nx, 2 * nx:8 * nx] == 0.0)


class TestEqqp:
    def test_spd_construction(self, rng):
        p = random_sparse_spd(30, 0.2, rng)
        dense = p.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0

    def test_equality_only(self):
        prob = generate_eqqp(20, seed=9)
        assert np.all(prob.equality_mask())

    def test_feasible_by_construction_and_solves(self):
        prob = generate_eqqp(20, seed=10)
        res = solve(prob, FAST)
        assert res.status.is_optimal
        assert prob.primal_residual(res.x) < 1e-3


class TestSuite:
    def test_sizes_are_log_spaced_and_unique(self):
        sizes = suite_sizes("portfolio")
        assert len(sizes) == PROBLEMS_PER_FAMILY
        assert len(set(sizes)) == PROBLEMS_PER_FAMILY
        assert sizes == sorted(sizes)

    def test_scale_grows_sizes(self):
        small = suite_sizes("eqqp", scale=1.0)
        large = suite_sizes("eqqp", scale=2.0)
        assert large[-1] > small[-1]

    def test_full_suite_has_120_problems(self):
        entries = list(benchmark_suite(count=2))
        assert len(entries) == 12  # 6 families x 2 (sanity on the small run)
        names = {e.family for e in entries}
        assert names == set(FAMILIES)

    def test_generate_by_name(self):
        prob = generate("svm", 10)
        assert prob.name.startswith("svm")
        with pytest.raises(KeyError):
            generate("bogus", 10)

    def test_nnz_spans_decades(self):
        entries = list(benchmark_suite(count=4))
        nnz = [e.problem.nnz for e in entries]
        assert max(nnz) / min(nnz) > 30

    def test_deterministic_given_seed(self):
        a = next(iter(benchmark_suite(count=1, families=["lasso"])))
        b = next(iter(benchmark_suite(count=1, families=["lasso"])))
        np.testing.assert_array_equal(a.problem.A.data, b.problem.A.data)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            list(benchmark_suite(families=["nope"]))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_smallest_instance_of_each_family_solves(self, family):
        size = suite_sizes(family)[0]
        prob = generate(family, size, seed=0)
        res = solve(prob, FAST)
        assert res.status.is_optimal, (family, res.status)
