"""Unit tests for the polish module's internals and edge cases."""

import numpy as np
import pytest

from repro.qp import QProblem
from repro.solver import OSQPSettings, OSQPSolver, SolverStatus
from repro.solver.polish import _take_rows, polish
from repro.solver.results import OSQPResult, SolverInfo
from repro.sparse import CSRMatrix, eye

from helpers import random_dense, random_spd_dense


class TestTakeRows:
    def test_selects_in_order(self, rng):
        dense = random_dense(rng, 6, 4, 0.5)
        mat = CSRMatrix.from_dense(dense)
        rows = np.array([4, 1, 3])
        out = _take_rows(mat, rows)
        np.testing.assert_allclose(out.to_dense(), dense[rows])

    def test_empty_selection(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 3, 4, 0.5))
        out = _take_rows(mat, np.array([], dtype=np.int64))
        assert out.shape == (0, 4)
        assert out.nnz == 0


class TestPolishEdgeCases:
    def _result_from(self, prob, settings=None):
        settings = settings or OSQPSettings(eps_abs=1e-4, eps_rel=1e-4,
                                            max_iter=8000)
        return OSQPSolver(prob, settings).solve()

    def test_polish_with_no_active_constraints(self, rng):
        # Interior optimum: active set empty -> polish solves P x = -q.
        n = 5
        p = random_spd_dense(rng, n, 0.5)
        q = rng.standard_normal(n) * 0.01
        prob = QProblem(P=CSRMatrix.from_dense(p), q=q, A=eye(n),
                        l=-np.full(n, 100.0), u=np.full(n, 100.0))
        res = self._result_from(prob)
        polished = polish(prob, res, OSQPSettings(polish=True))
        assert polished.status.is_optimal
        np.testing.assert_allclose(polished.x, np.linalg.solve(p, -q),
                                   atol=1e-4)

    def test_polish_keeps_original_when_worse(self, rng):
        # Feed polish a *wrong* duals vector: active set nonsense, the
        # polished candidate cannot beat the original residuals.
        n = 4
        p = random_spd_dense(rng, n, 0.5)
        prob = QProblem(P=CSRMatrix.from_dense(p),
                        q=rng.standard_normal(n), A=eye(n),
                        l=-np.ones(n), u=np.ones(n))
        good = self._result_from(
            prob, OSQPSettings(eps_abs=1e-9, eps_rel=1e-9,
                               max_iter=20000))
        tampered = OSQPResult(
            x=good.x, y=-np.abs(good.y) - 1.0, z=good.z,
            status=SolverStatus.SOLVED, info=SolverInfo())
        out = polish(prob, tampered, OSQPSettings(polish=True))
        # Either rejected (same object content) or genuinely no worse.
        pri = prob.primal_residual(out.x)
        assert pri <= prob.primal_residual(good.x) + 1e-6

    def test_polish_improves_loose_solve(self, rng):
        n = 6
        p = random_spd_dense(rng, n, 0.4)
        a = random_dense(rng, 8, n, 0.5)
        x0 = rng.standard_normal(n)
        prob = QProblem(P=CSRMatrix.from_dense(p),
                        q=rng.standard_normal(n),
                        A=CSRMatrix.from_dense(a),
                        l=a @ x0 - 0.5, u=a @ x0 + 0.5)
        loose = self._result_from(prob, OSQPSettings(
            eps_abs=1e-3, eps_rel=1e-3, max_iter=8000))
        polished = polish(prob, loose, OSQPSettings(polish=True))
        if polished.info.polished:
            grad = (prob.P.matvec(polished.x) + prob.q
                    + prob.A.rmatvec(polished.y))
            assert np.abs(grad).max() < 1e-7

    def test_polish_refinement_iterations_matter(self, rng):
        # With zero refinement steps the regularized solve's bias
        # remains; with a few it vanishes. Both must stay valid.
        n = 6
        p = random_spd_dense(rng, n, 0.4)
        prob = QProblem(P=CSRMatrix.from_dense(p),
                        q=rng.standard_normal(n), A=eye(n),
                        l=-np.ones(n) * 0.1, u=np.ones(n) * 0.1)
        res = self._result_from(prob)
        refined = polish(prob, res, OSQPSettings(
            polish=True, polish_refine_iter=5, polish_delta=1e-5))
        crude = polish(prob, res, OSQPSettings(
            polish=True, polish_refine_iter=0, polish_delta=1e-5))
        assert refined.status.is_optimal
        assert crude.status.is_optimal
        if refined.info.polished and crude.info.polished:
            grad_r = (prob.P.matvec(refined.x) + prob.q
                      + prob.A.rmatvec(refined.y))
            grad_c = (prob.P.matvec(crude.x) + prob.q
                      + prob.A.rmatvec(crude.y))
            assert np.abs(grad_r).max() <= np.abs(grad_c).max() + 1e-12


class TestPolishInfiniteBounds:
    def test_noise_dual_on_infinite_bound_not_pinned(self, rng):
        # Regression: a tiny negative dual on a -inf lower-bound row
        # used to put -inf on the polish KKT rhs (NaN refinement).
        n = 3
        p = random_spd_dense(rng, n, 0.6)
        prob = QProblem(P=CSRMatrix.from_dense(p),
                        q=rng.standard_normal(n), A=eye(n),
                        l=np.full(n, -np.inf), u=np.full(n, 10.0))
        res = OSQPSolver(prob, OSQPSettings(eps_abs=1e-5, eps_rel=1e-5,
                                            max_iter=8000)).solve()
        tampered = OSQPResult(x=res.x, y=res.y - 1e-12, z=res.z,
                              status=SolverStatus.SOLVED,
                              info=SolverInfo())
        out = polish(prob, tampered, OSQPSettings(polish=True))
        assert np.all(np.isfinite(out.x))
