"""Fleet mechanics in isolation: event queue ordering, node/spill-lane
state machines, placement policies, token bucket, admission control and
the autoscaler's break-even accounting. No numeric solves here."""

import pytest

from repro.fleet import (ACCEPT, SHED, SPILL, AcceleratorNode,
                         AdmissionController, Autoscaler, EventQueue,
                         LeastLoadedRouter, MatchScoreRouter,
                         RoundRobinRouter, SpillLane, TokenBucket,
                         make_router)


def node(node_id, arch="16{a}", **kwargs):
    return AcceleratorNode(node_id, arch, **kwargs)


class TestEventQueue:
    def test_orders_by_time_then_insertion(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(1.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]
        assert q.now == 2.0

    def test_clock_is_monotonic(self):
        q = EventQueue()
        q.push(5.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.push(1.0, "past")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1


class TestAcceleratorNode:
    def test_service_cycle(self):
        n = node(0)
        assert n.idle
        n.enqueue("req")
        assert n.backlog(0.0) == 1
        req = n.queue.popleft()
        finish = n.start_service(1.0, req, seconds=0.5, eta=0.8)
        assert finish == 1.5
        assert n.backlog(1.0) == 1  # in service counts
        assert n.finish_service(1.5) == "req"
        assert n.idle
        assert n.served == 1
        assert n.mean_eta == 0.8
        assert n.utilization(1.0) == 0.5

    def test_cannot_double_book(self):
        n = node(0)
        n.start_service(0.0, "a", seconds=1.0, eta=1.0)
        with pytest.raises(RuntimeError):
            n.start_service(0.5, "b", seconds=1.0, eta=1.0)

    def test_build_delay_gates_online(self):
        n = node(0, available_at=5.0)
        assert not n.online(4.9)
        assert n.online(5.0)
        n.draining = True
        assert not n.online(6.0)


class TestSpillLane:
    def test_server_accounting(self):
        lane = SpillLane(servers=2)
        assert lane.has_free_server
        lane.start_service(0.0, 1.0)
        lane.start_service(0.0, 2.0)
        assert not lane.has_free_server
        lane.finish_service()
        assert lane.has_free_server
        assert lane.served == 2
        with pytest.raises(ValueError):
            SpillLane(servers=0)


class TestRouters:
    def test_round_robin_rotates(self):
        router = RoundRobinRouter()
        nodes = [node(0), node(1), node(2)]
        picks = [router.choose(None, nodes, 0.0).node_id
                 for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_short_backlog(self):
        router = LeastLoadedRouter()
        busy, idle = node(0), node(1)
        busy.start_service(0.0, "x", seconds=1.0, eta=1.0)
        assert router.choose(None, [busy, idle], 0.0) is idle

    def test_match_prefers_best_score_when_idle(self):
        rates = {0: 1.0, 1: 3.0}
        router = MatchScoreRouter(
            lambda req, n: rates[n.node_id], queue_weight=1.0)
        assert router.choose(None, [node(0), node(1)], 0.0).node_id == 1

    def test_match_backlog_discount_diverts(self):
        rates = {0: 1.0, 1: 3.0}
        router = MatchScoreRouter(
            lambda req, n: rates[n.node_id], queue_weight=1.0)
        best, other = node(1), node(0)
        # Backlog 3 discounts the fast node 4x: 3/4 < 1.
        best.start_service(0.0, "x", seconds=1.0, eta=1.0)
        best.enqueue("y")
        best.enqueue("z")
        assert router.choose(None, [other, best], 0.0) is other

    def test_match_tie_breaks_to_lowest_id(self):
        router = MatchScoreRouter(lambda req, n: 1.0)
        assert router.choose(None, [node(2), node(5)], 0.0).node_id == 2

    def test_empty_fleet_returns_none(self):
        for router in (RoundRobinRouter(), LeastLoadedRouter(),
                       MatchScoreRouter(lambda req, n: 1.0)):
            assert router.choose(None, [], 0.0) is None

    def test_factory(self):
        assert isinstance(make_router("round-robin"), RoundRobinRouter)
        assert isinstance(make_router("least-loaded"), LeastLoadedRouter)
        assert isinstance(
            make_router("match", score_of=lambda req, n: 1.0),
            MatchScoreRouter)
        with pytest.raises(ValueError):
            make_router("match")  # needs score_of
        with pytest.raises(ValueError):
            make_router("dartboard")


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)      # burst exhausted
        assert bucket.try_take(0.5)          # 0.5s * 2/s = 1 token back
        assert not bucket.try_take(0.5)
        assert bucket.try_take(10.0)         # long idle refills to burst
        assert bucket.try_take(10.0)
        assert not bucket.try_take(10.0)     # capped at burst, not 20

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_default_admits(self):
        ctl = AdmissionController()
        assert ctl.decide(0.0, [node(0)]).action == ACCEPT

    def test_rate_limit_sheds(self):
        ctl = AdmissionController(rate=1.0, burst=1.0)
        nodes = [node(0)]
        assert ctl.decide(0.0, nodes).action == ACCEPT
        decision = ctl.decide(0.0, nodes)
        assert decision.action == SHED
        assert decision.reason == "rate-limit"
        assert not decision.admitted

    def test_no_online_node_spills(self):
        ctl = AdmissionController()
        building = node(0, available_at=10.0)
        decision = ctl.decide(0.0, [building])
        assert (decision.action, decision.reason) == \
            (SPILL, "no-online-node")

    def test_queue_depth_spills_only_when_all_deep(self):
        ctl = AdmissionController(max_queue_depth=1)
        deep, idle = node(0), node(1)
        deep.start_service(0.0, "x", seconds=1.0, eta=1.0)
        assert ctl.decide(0.0, [deep, idle]).action == ACCEPT
        idle.start_service(0.0, "y", seconds=1.0, eta=1.0)
        assert ctl.decide(0.0, [deep, idle]).action == SPILL


class TestAutoscaler:
    def test_commissions_past_break_even(self):
        scaler = Autoscaler(build_cost_cycles=1000)
        # eta 0.5 -> half of every mismatched solve's cycles are waste.
        for _ in range(3):
            scaler.observe(0.0, "fp", "exemplar", cycles=500, eta=0.5,
                           matched=False)
        assert scaler.plan() == []           # 750 < 1000
        scaler.observe(0.0, "fp", "exemplar", cycles=600, eta=0.5,
                       matched=False)
        due = scaler.plan()
        assert [s.fingerprint_key for s in due] == ["fp"]
        scaler.note_commissioned("fp")
        assert scaler.plan() == []           # resets, never re-plans
        assert scaler.clusters["fp"].commissioned

    def test_matched_traffic_accumulates_nothing(self):
        scaler = Autoscaler(build_cost_cycles=1)
        scaler.observe(0.0, "fp", None, cycles=10 ** 9, eta=0.3,
                       matched=True)
        assert scaler.plan() == []

    def test_plan_orders_worst_first(self):
        scaler = Autoscaler(build_cost_cycles=10)
        scaler.observe(0.0, "small", None, cycles=100, eta=0.5,
                       matched=False)
        scaler.observe(0.0, "big", None, cycles=1000, eta=0.5,
                       matched=False)
        assert [s.fingerprint_key for s in scaler.plan()] == \
            ["big", "small"]

    def test_pick_decommission_coldest(self):
        cold, warm = node(0), node(1)
        cold.last_active = 1.0
        warm.last_active = 5.0
        assert Autoscaler.pick_decommission([warm, cold]) is cold
        assert Autoscaler.pick_decommission(
            [warm, cold], protect=(0,)) is warm
        cold.draining = True
        assert Autoscaler.pick_decommission([cold]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(build_cost_cycles=0)
        with pytest.raises(ValueError):
            Autoscaler(build_seconds=-1)
        with pytest.raises(ValueError):
            Autoscaler(max_nodes=0)
