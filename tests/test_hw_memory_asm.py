"""Tests for the HBM memory-system model and the ROM assembler."""

import numpy as np
import pytest

from repro.customization import customize_problem
from repro.hw import (HBMConfig, U50_HBM, compile_osqp_program, disassemble,
                      plan_hbm_layout, rom_words)
from repro.problems import generate


@pytest.fixture(scope="module")
def customization():
    return customize_problem(generate("svm", 20, seed=0), 16)


class TestHBMPlan:
    def test_u50_config(self):
        assert U50_HBM.channels == 32
        assert U50_HBM.capacity_bytes == 8 * 1024 ** 3
        assert U50_HBM.total_bandwidth == pytest.approx(32 * 14.4e9)

    def test_plan_covers_all_streams(self, customization):
        plan = plan_hbm_layout(customization)
        assert set(plan.placements) == {"P", "A", "At"}
        assert plan.feasible

    def test_bandwidth_matches_width_and_clock(self, customization):
        plan = plan_hbm_layout(customization, clock_mhz=300.0)
        for p in plan.placements.values():
            # 8 bytes per nnz * C lanes * 300 MHz.
            assert p.bandwidth_needed == pytest.approx(8 * 16 * 300e6)
            # Enough channels for the burst.
            assert (p.channels_used * U50_HBM.bytes_per_s_per_channel
                    >= p.bandwidth_needed)

    def test_channels_within_device(self, customization):
        plan = plan_hbm_layout(customization)
        for p in plan.placements.values():
            assert all(0 <= ch < U50_HBM.channels for ch in p.channels)

    def test_infeasible_on_tiny_hbm(self, customization):
        tiny = HBMConfig(channels=1, bytes_per_s_per_channel=1e9,
                         capacity_bytes=1 << 30)
        plan = plan_hbm_layout(customization, config=tiny,
                               clock_mhz=300.0)
        assert not plan.feasible

    def test_capacity_check(self, customization):
        cramped = HBMConfig(channels=32, bytes_per_s_per_channel=14.4e9,
                            capacity_bytes=1000)  # absurdly small
        plan = plan_hbm_layout(customization, config=cramped)
        assert not plan.feasible
        assert plan.capacity_utilization > 1.0

    def test_summary_renders(self, customization):
        text = plan_hbm_layout(customization).summary()
        assert "HBM plan" in text and "capacity used" in text

    def test_capacity_utilization_small_problem(self, customization):
        plan = plan_hbm_layout(customization)
        assert 0.0 < plan.capacity_utilization < 0.01


class TestAssembler:
    def test_disassembly_structure(self):
        compiled = compile_osqp_program(10, 15, max_admm_iter=100,
                                        max_pcg_iter=50)
        listing = disassemble(compiled.program)
        assert "loop admm (max 100):" in listing
        assert "loop pcg (max 50):" in listing
        assert "end admm" in listing
        assert "spmv" in listing and "dup" in listing
        assert "ctrl" in listing

    def test_addresses_are_sequential(self):
        compiled = compile_osqp_program(4, 6, max_admm_iter=10,
                                        max_pcg_iter=10)
        listing = disassemble(compiled.program)
        addresses = [int(line.strip().split(":")[0])
                     for line in listing.splitlines()
                     if line.strip()[:4].isdigit()]
        assert addresses == list(range(len(addresses)))

    def test_rom_words_counts_loops_once(self):
        compiled = compile_osqp_program(4, 6, max_admm_iter=10_000,
                                        max_pcg_iter=10_000)
        words = rom_words(compiled.program)
        # ROM size is independent of the iteration limits.
        again = compile_osqp_program(4, 6, max_admm_iter=1, max_pcg_iter=1)
        assert rom_words(again.program) == words
        # Compact: the whole solver fits in well under 200 words.
        assert 50 < words < 200


class TestROMCodec:
    def _compiled(self):
        return compile_osqp_program(5, 8, max_admm_iter=30,
                                    max_pcg_iter=12)

    def test_roundtrip_disassembly(self):
        from repro.hw.asm import decode_program, encode_program
        compiled = self._compiled()
        image = encode_program(compiled.program)
        back = decode_program(image)
        assert disassemble(back) == disassemble(compiled.program)

    def test_decoded_program_executes_identically(self):
        import numpy as np
        from repro.hw.asm import decode_program, encode_program
        from repro.hw import RSQPAccelerator
        from repro.problems import generate
        from repro.solver import OSQPSettings

        prob = generate("svm", 10, seed=3)
        settings = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=1500)
        acc_a = RSQPAccelerator(prob, settings=settings)
        acc_b = RSQPAccelerator(prob, settings=settings)
        # Replace b's program sections with the decoded ROM image.
        image = encode_program(acc_b.compiled.program)
        acc_b.compiled.program = decode_program(image)
        # Rebuild the sections dict from the decoded tree so the
        # segmented runner uses decoded instructions.
        decoded = acc_b.compiled.program.instructions
        from repro.hw.isa import Loop
        loop = next(i for i in decoded if isinstance(i, Loop))
        inner = next(i for i in loop.body if isinstance(i, Loop))
        acc_b.compiled._sections = {
            "prologue": decoded[:decoded.index(loop)],
            "admm_body": loop.body,
            "pcg_body": inner.body,
            "epilogue": decoded[decoded.index(loop) + 1:],
        }
        res_a = acc_a.run()
        res_b = acc_b.run()
        assert res_a.converged and res_b.converged
        assert res_a.total_cycles == res_b.total_cycles
        np.testing.assert_allclose(res_a.x, res_b.x, atol=1e-12)

    def test_bad_magic_rejected(self):
        from repro.hw.asm import decode_program
        from repro.exceptions import SimulationError
        with pytest.raises(SimulationError):
            decode_program(b"NOPE" + b"\x00" * 16)

    def test_truncated_body_rejected(self):
        from repro.hw.asm import decode_program, encode_program
        from repro.exceptions import SimulationError
        image = encode_program(self._compiled().program)
        with pytest.raises(SimulationError):
            decode_program(image[:-7])

    def test_rom_image_size_reasonable(self):
        from repro.hw.asm import encode_program
        image = encode_program(self._compiled().program)
        # An entire QP solver in a few KiB of ROM.
        assert len(image) < 8192
