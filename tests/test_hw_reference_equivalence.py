"""Cross-validation: the compiled instruction stream vs the reference
software implementations, iterate by iterate."""

import numpy as np
import pytest

from repro.hw import RSQPAccelerator
from repro.linalg import JacobiPreconditioner, pcg
from repro.problems import generate_svm
from repro.qp import ReducedKKTOperator
from repro.solver import OSQPSettings, OSQPSolver


class TestPCGEquivalence:
    def test_machine_pcg_matches_reference_pcg(self):
        """One ADMM iteration's inner solve, bit-compared.

        The accelerator's first PCG solve starts from the same state as
        the reference indirect backend (zero iterates, same rho/sigma,
        same preconditioner), so the solutions must agree to solver
        tolerance.
        """
        prob = generate_svm(12, seed=5)
        settings = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=1,
                                check_termination=1, adaptive_rho=False,
                                scaling=10)
        # Reference: one ADMM iteration with the indirect backend.
        ref_solver = OSQPSolver(prob, settings)
        work = ref_solver.work
        op = ReducedKKTOperator(work.P, work.A, settings.sigma,
                                ref_solver.rho_vec)
        rhs = op.rhs(np.zeros(work.n), work.q, np.zeros(work.m),
                     np.zeros(work.m))
        ref = pcg(op, rhs, x0=np.zeros(work.n),
                  preconditioner=JacobiPreconditioner(op.diagonal()),
                  eps=1e-7, max_iter=500)
        assert ref.converged

        # Accelerator: run exactly one ADMM iteration; xt holds the
        # machine's PCG solution for the same subproblem.
        acc = RSQPAccelerator(prob, settings=OSQPSettings(
            eps_abs=1e-4, eps_rel=1e-4, max_iter=1, adaptive_rho=False),
            pcg_eps=1e-7)
        acc.run()
        machine_xt = acc.machine.vb["xt"]
        np.testing.assert_allclose(machine_xt, ref.x, atol=1e-5)

    def test_full_solve_iterate_counts_comparable(self):
        prob = generate_svm(12, seed=6)
        settings = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000,
                                adaptive_rho=False)
        ref = OSQPSolver(prob, settings).solve()
        acc = RSQPAccelerator(prob, settings=settings).run()
        assert ref.status.is_optimal and acc.converged
        # Termination norms differ (inf vs 2), but the iteration counts
        # stay within a small factor of each other.
        ratio = acc.admm_iterations / max(ref.info.iterations, 1)
        assert 0.3 < ratio < 3.0
