"""Tests for the fine-grained SpMV engine simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.customization import (Architecture, baseline_architecture,
                                 build_cvb, schedule, search_architecture)
from repro.encoding import encode_matrix
from repro.exceptions import SimulationError
from repro.hw.spmv_engine import simulate_spmv
from repro.problems import generate
from repro.sparse import CSRMatrix

from helpers import random_dense


def prepared(matrix, c, patterns=None):
    enc = encode_matrix(matrix, c)
    if patterns is None:
        arch = search_architecture([enc], c).architecture
    elif patterns == "baseline":
        arch = baseline_architecture(c)
    else:
        arch = Architecture(c, patterns)
    sched = schedule(enc, arch)
    return sched, build_cvb(sched)


class TestSimulateSpMV:
    def test_matches_matvec(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 20, 15, 0.3))
        sched, layout = prepared(mat, 8)
        x = rng.standard_normal(15)
        y, trace = simulate_spmv(sched, layout, x)
        np.testing.assert_allclose(y, mat.matvec(x), atol=1e-12)
        assert trace.input_cycles == sched.cycles

    def test_baseline_architecture(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 10, 10, 0.4))
        sched, layout = prepared(mat, 4, "baseline")
        x = rng.standard_normal(10)
        y, trace = simulate_spmv(sched, layout, x)
        np.testing.assert_allclose(y, mat.matvec(x), atol=1e-12)
        # Baseline: one output per cycle.
        assert all(o == 1 for o in trace.outputs_per_cycle)

    def test_long_rows_use_accumulate_path(self, rng):
        dense = np.zeros((2, 40))
        dense[0, :] = rng.standard_normal(40)  # 40 nnz at C=16: $$d
        dense[1, :5] = 1.0
        mat = CSRMatrix.from_dense(dense)
        sched, layout = prepared(mat, 16, "baseline")
        x = rng.standard_normal(40)
        y, trace = simulate_spmv(sched, layout, x)
        np.testing.assert_allclose(y, mat.matvec(x), atol=1e-10)
        assert trace.accumulate_events == 2  # two continuation chunks

    def test_bank_reads_counted(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 12, 9, 0.4))
        sched, layout = prepared(mat, 8)
        x = rng.standard_normal(9)
        _, trace = simulate_spmv(sched, layout, x)
        assert trace.bank_reads == mat.nnz

    def test_wrong_layout_detected(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 10, 8, 0.5))
        sched, layout = prepared(mat, 8)
        # Corrupt the translation table: point an element elsewhere.
        used = np.flatnonzero(layout.location >= 0)
        if used.size >= 2:
            a, b = used[0], used[1]
            if layout.location[a] != layout.location[b]:
                layout.location[a] = layout.location[b]
                with pytest.raises(SimulationError):
                    simulate_spmv(sched, layout, rng.standard_normal(8))

    def test_vector_length_checked(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 5, 5, 0.5))
        sched, layout = prepared(mat, 4)
        with pytest.raises(SimulationError):
            simulate_spmv(sched, layout, np.zeros(6))

    def test_alignment_rows_cover_outputs(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 30, 10, 0.3))
        sched, layout = prepared(mat, 8)
        _, trace = simulate_spmv(sched, layout, rng.standard_normal(10))
        assert trace.alignment_rows * 8 >= trace.total_outputs
        # One output per chunk (rows <= C nnz produce exactly one each).
        assert trace.total_outputs == len(sched.encoding.chunks)

    def test_customized_engine_on_benchmark_matrices(self):
        prob = generate("control", 8, seed=0)
        rng = np.random.default_rng(1)
        for matrix in (prob.P, prob.A, prob.A.transpose()):
            sched, layout = prepared(matrix, 16)
            x = rng.standard_normal(matrix.shape[1])
            y, _ = simulate_spmv(sched, layout, x)
            np.testing.assert_allclose(y, matrix.matvec(x), atol=1e-10)

    @given(st.integers(1, 25), st.integers(1, 20), st.integers(0, 5000),
           st.sampled_from([4, 8, 16]))
    @settings(max_examples=30, deadline=None)
    def test_engine_property(self, m, n, seed, c):
        rng = np.random.default_rng(seed)
        mat = CSRMatrix.from_dense(random_dense(rng, m, n, 0.35))
        enc = encode_matrix(mat, c)
        arch = Architecture(c, ["a" * c, "bb"])
        sched = schedule(enc, arch)
        layout = build_cvb(sched)
        x = rng.standard_normal(n)
        y, trace = simulate_spmv(sched, layout, x)
        np.testing.assert_allclose(y, mat.matvec(x), atol=1e-10)
        assert trace.input_cycles == sched.cycles

    def test_partial_matching_schedule_simulates_correctly(self, rng):
        mat = CSRMatrix.from_dense(np.eye(7))
        enc = encode_matrix(mat, 16)
        arch = Architecture(16, ["a" * 16])
        sched = schedule(enc, arch, allow_partial=True)
        layout = build_cvb(sched)
        x = rng.standard_normal(7)
        y, trace = simulate_spmv(sched, layout, x)
        np.testing.assert_allclose(y, x)
        assert trace.input_cycles == 1  # all 7 rows in one prefix pack
