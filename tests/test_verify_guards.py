"""Pre-execution guards: accelerator, solve_job, SolverService and
FleetService reject malformed artifacts with structured diagnostics."""

import pytest

from repro.exceptions import VerificationError
from repro.hw import RSQPAccelerator
from repro.hw.isa import BINARY_SCALAR_OPS, Loop, ScalarOp
from repro.problems import generate_svm
from repro.serving import SolverService
from repro.serving.arch_cache import build_artifact
from repro.serving.fingerprint import fingerprint_problem
from repro.serving.pool import solve_job
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=200)


def corrupt_program(compiled):
    """Null a binary ScalarOp's src2 in place (bypasses __post_init__)."""
    def find(items):
        for item in items:
            if isinstance(item, Loop):
                found = find(item.body)
                if found is not None:
                    return found
            elif (isinstance(item, ScalarOp)
                  and item.op in BINARY_SCALAR_OPS):
                return item
        return None

    victim = find(compiled.program.instructions)
    assert victim is not None
    object.__setattr__(victim, "src2", None)


class TestAcceleratorGuard:
    def test_clean_construction_passes(self):
        acc = RSQPAccelerator(generate_svm(10, seed=0), settings=SETTINGS)
        assert acc.run().converged

    def test_corrupted_injected_program_is_rejected(self):
        prob = generate_svm(10, seed=0)
        donor = RSQPAccelerator(prob, settings=SETTINGS)
        corrupt_program(donor.compiled)
        with pytest.raises(VerificationError) as excinfo:
            RSQPAccelerator(prob, customization=donor.customization,
                            settings=SETTINGS, compiled=donor.compiled)
        report = excinfo.value.report
        assert report is not None and not report.ok
        assert "scalar-arity" in {d.code for d in report.errors}

    def test_verify_flag_opts_out(self):
        prob = generate_svm(10, seed=0)
        donor = RSQPAccelerator(prob, settings=SETTINGS)
        corrupt_program(donor.compiled)
        # Explicit opt-out: construction succeeds (running would not).
        RSQPAccelerator(prob, customization=donor.customization,
                        settings=SETTINGS, compiled=donor.compiled,
                        verify=False)


class TestSolveJobGuard:
    def test_rejects_corrupted_artifact_with_report(self):
        prob = generate_svm(10, seed=1)
        artifact = build_artifact(prob, 8)
        corrupt_program(artifact.compiled)
        with pytest.raises(VerificationError) as excinfo:
            solve_job(prob, artifact, SETTINGS)
        assert excinfo.value.report is not None
        assert not artifact.verified

    def test_acceptance_is_memoized_on_artifact(self):
        prob = generate_svm(10, seed=1)
        artifact = build_artifact(prob, 8)
        assert not artifact.verified
        result = solve_job(prob, artifact, SETTINGS)
        assert result.converged
        assert artifact.verified
        # A second solve skips the re-check entirely.
        assert solve_job(prob, artifact, SETTINGS).converged

    def test_verify_false_skips_the_check(self):
        prob = generate_svm(10, seed=1)
        artifact = build_artifact(prob, 8)
        result = solve_job(prob, artifact, SETTINGS, verify=False)
        assert result.converged
        assert not artifact.verified


class TestSolverServiceGuard:
    def test_rejection_is_counted_and_healed_by_rebuild(self):
        # A corrupted *cached* artifact is a recoverable condition: the
        # reject is counted, the entry is invalidated, and the request
        # is served from a fresh rebuild instead of failing.
        prob = generate_svm(10, seed=2)
        with SolverService(settings=SETTINGS, workers=1,
                           mode="serial") as service:
            c = service.width_for(prob)
            fingerprint = fingerprint_problem(prob, c=c)
            key = service.cache_key(fingerprint, c)
            artifact = build_artifact(
                prob, c, fingerprint=fingerprint,
                max_admm_iter=SETTINGS.max_iter,
                max_pcg_iter=service.max_pcg_iter)
            corrupt_program(artifact.compiled)
            service.cache.get_or_build(key, lambda: artifact)
            result = service.solve(prob)
            assert result.converged
            snap = service.metrics.snapshot()
            assert snap["counters"]["serving_verify_rejects_total"] == 1
            assert snap["counters"]["serving_artifact_rebuilds_total"] == 1
            # The healed entry replaced the corrupted one.
            healed = service.cache.peek(key)
            assert healed is not artifact
            assert healed.verified

    def test_happy_path_marks_artifact_verified(self):
        prob = generate_svm(10, seed=3)
        with SolverService(settings=SETTINGS, workers=1,
                           mode="serial") as service:
            result = service.solve(prob)
            assert result.converged
            c = service.width_for(prob)
            key = service.cache_key(fingerprint_problem(prob, c=c), c)
            assert service.cache.get(key).verified
            snap = service.metrics.snapshot()
            assert "serving_verify_rejects_total" not in snap["counters"]


class TestFleetGuard:
    def test_corrupted_node_artifact_sheds_with_reason(self):
        from repro.fleet import FleetService

        prob = generate_svm(10, seed=4)
        service = FleetService(policy="round-robin", settings=SETTINGS)
        node = service.commission(prob)
        fingerprint = fingerprint_problem(prob,
                                          c=service.width_for(prob))
        key = service._artifact_key(fingerprint, node.architecture)
        artifact = build_artifact(
            prob, node.architecture.c, architecture=node.architecture,
            fingerprint=fingerprint, max_admm_iter=SETTINGS.max_iter,
            max_pcg_iter=service.max_pcg_iter)
        corrupt_program(artifact.compiled)
        service._artifacts.get_or_build(key, lambda: artifact)

        result = service.solve(prob)
        assert result.x is None
        assert result.record.lane == "shed"
        assert result.record.shed_reason.startswith("verify:")
        assert "scalar-arity" in result.record.shed_reason
        snap = service.metrics_snapshot()
        assert snap["counters"]["fleet_verify_rejects_total"] == 1

    def test_clean_fleet_solve_unaffected(self):
        from repro.fleet import FleetService

        prob = generate_svm(10, seed=5)
        service = FleetService(policy="round-robin", settings=SETTINGS)
        service.commission(prob)
        result = service.solve(prob)
        assert result.converged
        assert result.record.lane == "node"
