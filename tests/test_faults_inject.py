"""FaultInjector: bit-flips, hook addressing, backend parity.

The load-bearing property: armed with the same plan, the interpreter
and the compiled backend fire the identical faults (same events, same
before/after bit patterns) and finish in bit-identical machine state —
the differential-testing contract survives injection.
"""

import numpy as np
import pytest

from repro.faults import (EVERY_ATTEMPT, Fault, FaultInjector, FaultPlan,
                          flip_bit, poison_artifact)
from repro.problems import generate
from repro.serving.arch_cache import build_artifact
from repro.serving.pool import solve_job
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3)


@pytest.fixture(scope="module")
def bound():
    problem = generate("control", 4, seed=0)
    artifact = build_artifact(problem, 4,
                              max_admm_iter=SETTINGS.max_iter)
    return problem, artifact


class TestFlipBit:
    def test_is_an_involution(self):
        buf = np.array([1.5, -2.25, 3.0])
        before, after = flip_bit(buf, 1, 52)
        assert before == -2.25 and after != before
        flip_bit(buf, 1, 52)
        assert buf[1] == -2.25

    def test_element_reduced_modulo_size(self):
        buf = np.zeros(4)
        flip_bit(buf, 6, 0)                       # 6 % 4 == 2
        assert buf[2] != 0.0
        assert np.count_nonzero(buf) == 1

    def test_empty_buffer_is_a_noop(self):
        buf = np.zeros(0)
        assert flip_bit(buf, 0, 5) == (0.0, 0.0)


class TestInjectorAddressing:
    def test_fires_at_exact_op_index(self):
        inj = FaultInjector([Fault(kind="mac-flip", op_index=2,
                                   element=0, bit=10)])
        buf = np.ones(3)
        inj.on_spmv("a", buf)                     # op 0
        inj.on_spmv("b", buf)                     # op 1
        assert not inj.events and buf[0] == 1.0
        inj.on_spmv("c", buf)                     # op 2: fires
        (event,) = inj.events
        assert event["site"] == "c" and event["op_index"] == 2
        assert buf[0] != 1.0

    def test_channels_count_independently(self):
        inj = FaultInjector([Fault(kind="hbm-read", op_index=0)])
        inj.on_spmv("s", np.ones(2))              # spmv channel: no fire
        assert not inj.events
        inj.on_load("q", np.ones(2))              # load op 0: fires
        assert len(inj.events) == 1
        assert inj.events[0]["channel"] == "load"

    def test_rejects_non_datapath_kinds(self):
        with pytest.raises(ValueError, match="datapath"):
            FaultInjector([Fault(kind="node-stall")])

    def test_truthiness_reflects_armed_sites(self):
        assert not FaultInjector([])
        assert FaultInjector([Fault(kind="cvb-read")])


class TestBackendParity:
    PLAN = FaultPlan(seed=1, faults=(
        Fault(kind="mac-flip", request=0, op_index=3, element=2, bit=40),
        Fault(kind="hbm-read", request=0, op_index=1, element=5, bit=30,
              attempt=EVERY_ATTEMPT),
        Fault(kind="cvb-read", request=0, op_index=4, element=1, bit=20),
    ))

    def run_backend(self, bound, backend):
        problem, artifact = bound
        injector = self.PLAN.injector_for(0, 0)
        result = solve_job(problem, artifact, SETTINGS, verify=False,
                           backend=backend, injector=injector)
        return result, injector.events

    def test_same_plan_same_events_and_bits(self, bound):
        res_i, events_i = self.run_backend(bound, "interpret")
        res_c, events_c = self.run_backend(bound, "compiled")
        assert events_i == events_c
        assert len(events_i) == 3
        np.testing.assert_array_equal(res_i.x, res_c.x)
        np.testing.assert_array_equal(res_i.y, res_c.y)
        np.testing.assert_array_equal(res_i.z, res_c.z)
        assert res_i.admm_iterations == res_c.admm_iterations
        assert res_i.rollbacks == res_c.rollbacks
        assert res_i.fault_events == res_c.fault_events

    def test_result_carries_fault_events(self, bound):
        result, events = self.run_backend(bound, "compiled")
        assert tuple(events) == result.fault_events


class TestPoisonArtifact:
    def test_desyncs_cycles_and_clears_verified(self, bound):
        _, artifact = bound
        import copy
        victim = copy.deepcopy(artifact)
        victim.verified = True
        before = victim.compiled.admm_body_cycles
        event = poison_artifact(victim)
        assert victim.compiled.admm_body_cycles == before + 1
        assert victim.verified is False
        assert event["kind"] == "artifact-poison"
        assert (event["before"], event["after"]) == (before, before + 1)
