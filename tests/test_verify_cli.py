"""CLI gate: ``python -m repro.verify`` over bounded suite slices."""

import pytest

from repro.verify.__main__ import main


class TestVerifyCLI:
    def test_clean_slice_exits_zero(self, capsys):
        rc = main(["--families", "control", "--count", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out
        assert "control[00]" in out

    def test_baseline_infos_are_printable(self, capsys):
        rc = main(["--families", "lasso", "--count", "1", "--baseline",
                   "--show", "info"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "over-provisioned-depth" in out

    def test_explicit_width_override(self, capsys):
        rc = main(["--families", "control", "--count", "1", "--c", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "C=4" in out

    def test_unknown_family_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--families", "nonexistent"])
        assert excinfo.value.code == 2
