"""Unit tests for repro.sparse.builders."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.sparse import (CSRMatrix, block_diag, diag, eye, from_blocks,
                          hstack, random_sparse, vstack)

from helpers import random_dense


class TestBasics:
    def test_eye(self):
        np.testing.assert_allclose(eye(3).to_dense(), np.eye(3))
        np.testing.assert_allclose(eye(3, scale=2.5).to_dense(),
                                   2.5 * np.eye(3))

    def test_diag(self):
        v = np.array([1.0, 0.0, -2.0])
        np.testing.assert_allclose(diag(v).to_dense(), np.diag(v))

    def test_random_sparse_density(self, rng):
        mat = random_sparse(50, 40, 0.1, rng)
        assert mat.nnz == round(0.1 * 50 * 40)
        assert mat.shape == (50, 40)

    def test_random_sparse_extremes(self, rng):
        assert random_sparse(10, 10, 0.0, rng).nnz == 0
        assert random_sparse(5, 5, 1.0, rng).nnz == 25

    def test_random_sparse_uniform_values(self, rng):
        mat = random_sparse(20, 20, 0.2, rng, values="uniform")
        assert np.all(mat.data > 0)

    def test_random_sparse_rejects_bad_density(self, rng):
        with pytest.raises(ShapeError):
            random_sparse(3, 3, 1.5, rng)
        with pytest.raises(ValueError):
            random_sparse(3, 3, 0.5, rng, values="bogus")


class TestStacking:
    def test_hstack(self, rng):
        a, b = random_dense(rng, 3, 2), random_dense(rng, 3, 4)
        out = hstack([CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)])
        np.testing.assert_allclose(out.to_dense(), np.hstack([a, b]))

    def test_vstack(self, rng):
        a, b = random_dense(rng, 2, 3), random_dense(rng, 4, 3)
        out = vstack([CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)])
        np.testing.assert_allclose(out.to_dense(), np.vstack([a, b]))

    def test_stack_shape_errors(self, rng):
        a = CSRMatrix.from_dense(random_dense(rng, 2, 2))
        b = CSRMatrix.from_dense(random_dense(rng, 3, 3))
        with pytest.raises(ShapeError):
            hstack([a, b])
        with pytest.raises(ShapeError):
            vstack([a, b])
        with pytest.raises(ShapeError):
            hstack([])

    def test_block_diag(self, rng):
        a, b = random_dense(rng, 2, 3), random_dense(rng, 3, 1)
        out = block_diag([CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)])
        expected = np.zeros((5, 4))
        expected[:2, :3] = a
        expected[2:, 3:] = b
        np.testing.assert_allclose(out.to_dense(), expected)


class TestFromBlocks:
    def test_grid_with_none(self, rng):
        a = random_dense(rng, 2, 2)
        b = random_dense(rng, 2, 3)
        c = random_dense(rng, 1, 3)
        grid = [[CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)],
                [None, CSRMatrix.from_dense(c)]]
        out = from_blocks(grid)
        expected = np.zeros((3, 5))
        expected[:2, :2] = a
        expected[:2, 2:] = b
        expected[2:, 2:] = c
        np.testing.assert_allclose(out.to_dense(), expected)

    def test_kkt_shape_assembly(self, rng):
        # The OSQP KKT layout: [[P, A^T], [A, -I/rho]].
        p = CSRMatrix.from_dense(random_dense(rng, 4, 4))
        a = CSRMatrix.from_dense(random_dense(rng, 3, 4))
        kkt = from_blocks([[p, a.transpose()], [a, eye(3, scale=-0.5)]])
        assert kkt.shape == (7, 7)
        np.testing.assert_allclose(kkt.to_dense()[4:, :4], a.to_dense())

    def test_ragged_grid_rejected(self, rng):
        a = CSRMatrix.from_dense(random_dense(rng, 2, 2))
        with pytest.raises(ShapeError):
            from_blocks([[a, a], [a]])

    def test_inconsistent_shapes_rejected(self, rng):
        a = CSRMatrix.from_dense(random_dense(rng, 2, 2))
        b = CSRMatrix.from_dense(random_dense(rng, 3, 2))
        with pytest.raises(ShapeError):
            from_blocks([[a, b]])

    def test_unknown_zero_block_shape_rejected(self):
        a = eye(2)
        with pytest.raises(ShapeError):
            from_blocks([[a, None], [None, None]])

    def test_all_none_grid_rejected(self):
        with pytest.raises(ShapeError):
            from_blocks([])
