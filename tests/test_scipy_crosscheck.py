"""Independent cross-validation of the solver against scipy.optimize.

Everything else in the test suite validates our components against each
other; this file checks the end solutions against a completely separate
implementation (SLSQP) on small problems.
"""

import numpy as np
import pytest
from scipy.optimize import minimize

from repro.qp import QProblem
from repro.solver import OSQPSettings, PDQPSettings, solve, solve_pdqp
from repro.sparse import CSRMatrix

from helpers import random_dense, random_spd_dense

ACCURATE = OSQPSettings(eps_abs=1e-8, eps_rel=1e-8, max_iter=30000,
                        polish=True)
ACCURATE_PDQP = PDQPSettings(eps_abs=1e-8, eps_rel=1e-8, max_iter=200000)


def scipy_reference(prob, x0=None):
    p = prob.P.to_dense()
    a = prob.A.to_dense()

    def objective(x):
        return 0.5 * x @ p @ x + prob.q @ x

    def jac(x):
        return p @ x + prob.q

    constraints = []
    for i in range(prob.m):
        row = a[i]
        if np.isfinite(prob.u[i]):
            constraints.append({"type": "ineq",
                                "fun": (lambda x, r=row, u=prob.u[i]:
                                        u - r @ x),
                                "jac": lambda x, r=row: -r})
        if np.isfinite(prob.l[i]):
            constraints.append({"type": "ineq",
                                "fun": (lambda x, r=row, l=prob.l[i]:
                                        r @ x - l),
                                "jac": lambda x, r=row: r})
    start = x0 if x0 is not None else np.zeros(prob.n)
    res = minimize(objective, start, jac=jac, method="SLSQP",
                   constraints=constraints,
                   options={"maxiter": 500, "ftol": 1e-12})
    assert res.success, res.message
    return res.x


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_matches_slsqp_on_random_inequality_qps(seed):
    rng = np.random.default_rng(seed)
    n, m = 5, 7
    p = random_spd_dense(rng, n, 0.5)
    a = random_dense(rng, m, n, 0.6)
    x0 = rng.standard_normal(n)
    slack = np.abs(rng.standard_normal(m)) + 0.1
    prob = QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a), l=a @ x0 - slack,
                    u=a @ x0 + slack)
    ours = solve(prob, ACCURATE)
    assert ours.status.is_optimal
    reference = scipy_reference(prob, x0=x0)
    # Strong convexity: unique optimum, so the points must coincide.
    np.testing.assert_allclose(ours.x, reference, atol=1e-4)
    assert prob.objective(ours.x) <= prob.objective(reference) + 1e-6


@pytest.mark.parametrize("seed", [0, 2, 3])
def test_pdqp_matches_slsqp_on_random_inequality_qps(seed):
    rng = np.random.default_rng(seed)
    n, m = 5, 7
    p = random_spd_dense(rng, n, 0.5)
    a = random_dense(rng, m, n, 0.6)
    x0 = rng.standard_normal(n)
    slack = np.abs(rng.standard_normal(m)) + 0.1
    prob = QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a), l=a @ x0 - slack,
                    u=a @ x0 + slack)
    ours = solve_pdqp(prob, ACCURATE_PDQP)
    assert ours.status.is_optimal
    reference = scipy_reference(prob, x0=x0)
    # First-order accuracy: no polish step, so the bar is slightly
    # looser than the ADMM+polish crosscheck above.
    np.testing.assert_allclose(ours.x, reference, atol=5e-4)
    assert prob.objective(ours.x) <= prob.objective(reference) + 1e-3


def test_pdqp_matches_slsqp_with_one_sided_bounds():
    rng = np.random.default_rng(7)
    n = 4
    p = random_spd_dense(rng, n, 0.5)
    a = np.vstack([np.eye(n), np.ones((1, n))])
    prob = QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a),
                    l=np.concatenate([np.zeros(n), [-np.inf]]),
                    u=np.concatenate([np.full(n, np.inf), [1.0]]))
    ours = solve_pdqp(prob, ACCURATE_PDQP)
    assert ours.status.is_optimal
    reference = scipy_reference(prob)
    np.testing.assert_allclose(ours.x, reference, atol=5e-4)


def test_matches_slsqp_with_one_sided_bounds():
    rng = np.random.default_rng(7)
    n = 4
    p = random_spd_dense(rng, n, 0.5)
    a = np.vstack([np.eye(n), np.ones((1, n))])
    prob = QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a),
                    l=np.concatenate([np.zeros(n), [-np.inf]]),
                    u=np.concatenate([np.full(n, np.inf), [1.0]]))
    ours = solve(prob, ACCURATE)
    assert ours.status.is_optimal
    reference = scipy_reference(prob)
    np.testing.assert_allclose(ours.x, reference, atol=1e-4)


def test_matches_slsqp_through_modeling_layer():
    from repro.modeling import Minimize, ModelProblem, Variable, between, \
        sum_squares
    rng = np.random.default_rng(11)
    a = rng.standard_normal((8, 3))
    b = rng.standard_normal(8)
    x = Variable(3)
    model = ModelProblem(Minimize(sum_squares(a @ x - b)),
                         [between(-0.3, x, 0.3)])
    res = model.solve(ACCURATE)
    assert res.status.is_optimal

    def objective(v):
        return float(np.sum((a @ v - b) ** 2))

    ref = minimize(objective, np.zeros(3), method="SLSQP",
                   bounds=[(-0.3, 0.3)] * 3,
                   options={"maxiter": 500, "ftol": 1e-14})
    assert ref.success
    np.testing.assert_allclose(x.value, ref.x, atol=1e-4)
