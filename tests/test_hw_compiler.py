"""Direct unit tests for the OSQP -> ISA compiler and its cost model."""

import numpy as np
import pytest

from repro.hw import (ADMM_LOOP, PCG_LOOP, Loop, SpMV, VecDup, VectorOp,
                      attach_costs, compile_osqp_program)
from repro.hw.compiler import StaticCostContext, _vector_lengths


def compiled(n=7, m=11):
    c = compile_osqp_program(n, m, max_admm_iter=100, max_pcg_iter=40)
    attach_costs(c, 16, spmv={"P": 50, "A": 80, "At": 80},
                 depths={"P": 5, "A": 9, "At": 7}, n=n, m=m)
    return c


class TestStructure:
    def test_two_nested_loops(self):
        c = compiled()
        loops = [i for i in c.program.instructions if isinstance(i, Loop)]
        assert len(loops) == 1 and loops[0].name == ADMM_LOOP
        inner = [i for i in loops[0].body if isinstance(i, Loop)]
        assert len(inner) == 1 and inner[0].name == PCG_LOOP
        assert loops[0].max_iter == 100
        assert inner[0].max_iter == 40

    def test_every_matrix_spmv_has_a_preceding_vecdup(self):
        c = compiled()
        # Structural invariant: each SpMV's CVB is written by some
        # VecDup somewhere in the program.
        dups = set()
        spmvs = set()

        def collect(items):
            for item in items:
                if isinstance(item, Loop):
                    collect(item.body)
                elif isinstance(item, VecDup):
                    dups.add(item.cvb)
                elif isinstance(item, SpMV):
                    spmvs.add(item.src)

        collect(c.program.instructions)
        assert spmvs <= dups

    def test_k_apply_streams_all_three_matrices(self):
        c = compiled()
        admm = next(i for i in c.program.instructions
                    if isinstance(i, Loop))
        pcg = next(i for i in admm.body if isinstance(i, Loop))
        matrices = [i.matrix for i in pcg.body if isinstance(i, SpMV)]
        assert matrices == ["P", "A", "At"]

    def test_vector_lengths_cover_all_program_vectors(self):
        n, m = 7, 11
        c = compiled(n, m)
        lengths = _vector_lengths(n, m)

        def walk(items):
            for item in items:
                if isinstance(item, Loop):
                    walk(item.body)
                elif isinstance(item, VectorOp):
                    for name in item.srcs:
                        assert name in lengths, name
                    if item.dst not in lengths:
                        # dots write scalars; everything else must have
                        # a known length
                        from repro.hw import VectorOpKind
                        assert item.op is VectorOpKind.DOT, item

        walk(c.program.instructions)


class TestCostModel:
    def test_sections_have_positive_costs(self):
        c = compiled()
        assert c.prologue_cycles > 0
        assert c.admm_body_cycles > 0
        assert c.pcg_body_cycles > 0
        assert c.epilogue_cycles > 0

    def test_estimate_is_affine_in_iterations(self):
        c = compiled()
        base = c.estimate_cycles(0, 0)
        one_admm = c.estimate_cycles(1, 0)
        one_pcg = c.estimate_cycles(0, 1)
        assert one_admm - base == c.admm_body_cycles
        assert one_pcg - base == c.pcg_body_cycles
        assert (c.estimate_cycles(10, 35)
                == base + 10 * c.admm_body_cycles
                + 35 * c.pcg_body_cycles)

    def test_costs_scale_with_spmv_cycles(self):
        slow = compile_osqp_program(7, 11, max_admm_iter=10,
                                    max_pcg_iter=10)
        attach_costs(slow, 16, spmv={"P": 500, "A": 800, "At": 800},
                     depths={"P": 5, "A": 9, "At": 7}, n=7, m=11)
        fast = compiled()
        assert slow.pcg_body_cycles > fast.pcg_body_cycles
        # Exactly the SpMV delta: (500-50) + (800-80) + (800-80).
        assert (slow.pcg_body_cycles - fast.pcg_body_cycles
                == (500 - 50) + (800 - 80) + (800 - 80))

    def test_costs_scale_with_cvb_depth(self):
        deep = compile_osqp_program(7, 11, max_admm_iter=10,
                                    max_pcg_iter=10)
        attach_costs(deep, 16, spmv={"P": 50, "A": 80, "At": 80},
                     depths={"P": 500, "A": 900, "At": 700}, n=7, m=11)
        fast = compiled()
        assert deep.pcg_body_cycles > fast.pcg_body_cycles

    def test_static_context(self):
        ctx = StaticCostContext(c=8, lengths={"v": 20}, spmv={"M": 7},
                                depths={"M": 3})
        assert ctx.vector_length("v") == 20
        assert ctx.spmv_cycles("M") == 7
        assert ctx.cvb_depth("M") == 3
