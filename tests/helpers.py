"""Shared numeric helpers for the test suite."""

import numpy as np

from repro.sparse import CSRMatrix


def random_dense(rng, m, n, density=0.3):
    """Dense array with roughly `density` fraction of non-zeros."""
    mask = rng.random((m, n)) < density
    vals = rng.standard_normal((m, n))
    vals[vals == 0.0] = 1.0
    return np.where(mask, vals, 0.0)


def random_spd_dense(rng, n, density=0.4, shift=None):
    """Dense symmetric positive-definite matrix with sparse off-diagonals."""
    a = random_dense(rng, n, n, density)
    m = (a + a.T) / 2.0
    if shift is None:
        shift = np.abs(m).sum(axis=1).max() + 1.0
    return m + shift * np.eye(n)


def random_csr(rng, m, n, density=0.3):
    return CSRMatrix.from_dense(random_dense(rng, m, n, density))
