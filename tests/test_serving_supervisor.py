"""ShardSupervisor health machine, driven deterministically: the
monitor thread is never started — tests call :meth:`check` with
synthetic clocks against workers that never heartbeat on their own, so
every tier transition (healthy → suspect → kill) is exact."""

import multiprocessing
import queue
import time

import pytest

from repro.faults.breaker import CLOSED, OPEN
from repro.serving.supervisor import (FAILED, HEALTHY, RESTARTING, SHUTDOWN,
                                      STARTING, STOPPED, SUSPECT,
                                      ShardSupervisor)


# Module-level so spawn contexts could pickle them (fork is the Linux
# default, but the targets stay importable either way).
def _silent_worker(index, generation, request_q, result_q, heartbeat,
                   cancel_event, config):
    """Never touches its heartbeat — the test script owns the clock."""
    while True:
        try:
            msg = request_q.get(timeout=0.05)
        except queue.Empty:
            continue
        if msg == SHUTDOWN:
            result_q.put(("bye", generation))
            return


def _acking_worker(index, generation, request_q, result_q, heartbeat,
                   cancel_event, config):
    """Heartbeats and acknowledges cooperative-cancel pokes."""
    while True:
        heartbeat.value = time.time()
        if cancel_event.is_set():
            cancel_event.clear()
            result_q.put(("acked", generation))
        try:
            msg = request_q.get(timeout=0.02)
        except queue.Empty:
            continue
        if msg == SHUTDOWN:
            return


def _deaf_worker(index, generation, request_q, result_q, heartbeat,
                 cancel_event, config):
    """Never reads its queue — the drain sentinel falls on deaf ears."""
    while True:
        time.sleep(0.5)


def _make(shards=1, target=_silent_worker, **kw):
    kw.setdefault("soft_timeout", 0.5)
    kw.setdefault("hard_timeout", 2.0)
    kw.setdefault("restart_backoff_base", 0.05)
    kw.setdefault("restart_backoff_max", 0.2)
    return ShardSupervisor(shards, target, None, **kw)


def _wait_dead(process, timeout=10.0):
    process.join(timeout=timeout)
    assert not process.is_alive()


@pytest.fixture()
def sup():
    supervisor = _make()
    yield supervisor
    supervisor.drain(timeout=10.0)


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardSupervisor(0, _silent_worker)

    def test_rejects_inverted_timeouts(self):
        with pytest.raises(ValueError):
            ShardSupervisor(1, _silent_worker, soft_timeout=2.0,
                            hard_timeout=1.0)


class TestHealthTiers:
    def test_check_spawns_and_fresh_heartbeat_is_healthy(self, sup):
        sup.check()  # handle is None + restart_at 0 -> spawn
        handle = sup.handle(0)
        assert handle.alive
        assert handle.state == STARTING
        assert handle.generation == 1
        sup.check(time.time())  # age ~0 < soft -> healthy
        assert handle.state == HEALTHY
        assert sup.routable_indices() == [0]

    def test_soft_timeout_suspects_and_pokes_cancel(self, sup):
        sup.check()
        handle = sup.handle(0)
        spawn_at = float(handle.heartbeat.value)
        sup.check(spawn_at + 0.6)  # soft < age < hard
        assert handle.state == SUSPECT
        assert handle.cancel_event.is_set()
        assert sup.stats()["heartbeat_misses"] == [1]
        # Suspect shards still take new work (degraded, not dead).
        assert sup.routable_indices() == [0]
        # Staying suspect does not double-count the miss.
        sup.check(spawn_at + 0.7)
        assert sup.stats()["heartbeat_misses"] == [1]

    def test_heartbeat_resumption_recovers_without_restart(self, sup):
        sup.check()
        handle = sup.handle(0)
        spawn_at = float(handle.heartbeat.value)
        sup.check(spawn_at + 0.6)
        assert handle.state == SUSPECT
        handle.heartbeat.value = spawn_at + 1.0  # worker came back
        sup.check(spawn_at + 1.1)
        assert handle.state == HEALTHY
        assert sup.stats()["restarts"] == [0]
        assert sup.handle(0) is handle  # same incarnation

    def test_hard_timeout_kills_and_schedules_restart(self, sup):
        sup.check()
        first = sup.handle(0)
        spawn_at = float(first.heartbeat.value)
        downs = []
        sup.on_shard_down = lambda h, reason: downs.append((h, reason))
        sup.check(spawn_at + 3.0)  # past hard tier -> SIGKILL
        assert not first.alive
        assert downs == [(first, "stall")]
        assert first.state == RESTARTING
        assert sup.handle(0) is None
        assert sup.routable_indices() == []
        assert sup.stats()["restarts"] == [1]
        # Backoff elapsed -> replacement with a bumped generation.
        sup.check(spawn_at + 3.0 + sup.restart_backoff_base)
        second = sup.handle(0)
        assert second is not None and second.generation == 2
        assert second.request_q is not first.request_q  # fresh queues

    def test_crash_is_detected_and_restarted(self, sup):
        sup.check()
        first = sup.handle(0)
        downs = []
        sup.on_shard_down = lambda h, reason: downs.append(reason)
        first.process.kill()
        _wait_dead(first.process)
        now = time.time()
        sup.check(now)
        assert downs == ["crash"]
        assert sup.handle(0) is None
        # Not yet: backoff still pending.
        sup.check(now + sup.restart_backoff_base / 2)
        assert sup.handle(0) is None
        sup.check(now + sup.restart_backoff_base + 0.01)
        assert sup.handle(0) is not None
        assert sup.handle(0).generation == 2

    def test_cooperative_cancel_is_acknowledged(self):
        sup = _make(target=_acking_worker, soft_timeout=0.3,
                    hard_timeout=10.0)
        try:
            sup.check()
            handle = sup.handle(0)
            # Force the suspect tier with a rewound heartbeat, then let
            # the live worker notice the poke.
            handle.heartbeat.value = time.time() - 1.0
            sup.check(time.time())
            assert handle.state == SUSPECT
            kind, generation = handle.result_q.get(timeout=10.0)
            assert (kind, generation) == ("acked", 1)
            assert not handle.cancel_event.is_set()
            sup.check(time.time())  # heartbeat resumed -> healthy
            assert handle.state == HEALTHY
        finally:
            sup.drain(timeout=10.0)


class TestBreaker:
    def test_flapping_shard_fails_then_half_open_probe(self):
        sup = _make(breaker_threshold=2, breaker_reset_seconds=5.0)
        try:
            sup.check()
            now = time.time()
            for expected_restarts in (1, 2):
                handle = sup.handle(0)
                handle.process.kill()
                _wait_dead(handle.process)
                sup.check(now)
                assert sup.stats()["restarts"] == [expected_restarts]
                if expected_restarts < 2:
                    sup.check(now + sup.restart_backoff_max + 0.01)
                    now += sup.restart_backoff_max + 0.01
            # Two consecutive failures: breaker open, shard failed.
            assert sup.breakers[0].state == OPEN
            assert sup.states() == [FAILED]
            # Inside the window nothing respawns, however long we wait.
            sup.check(now + 4.0)
            assert sup.handle(0) is None
            # Past the window: one half-open probe restart.
            sup.check(now + 5.1)
            probe = sup.handle(0)
            assert probe is not None and probe.generation == 3
            # A healthy heartbeat closes the breaker again.
            probe.heartbeat.value = now + 5.2
            sup.check(now + 5.2)
            assert sup.breakers[0].state == CLOSED
            assert sup.states() == [HEALTHY]
        finally:
            sup.drain(timeout=10.0)


class TestDrain:
    def test_drain_reaps_cleanly(self):
        sup = _make(shards=2)
        sup.check()
        handles = [sup.handle(0), sup.handle(1)]
        assert all(h.alive for h in handles)
        exitcodes = sup.drain(timeout=10.0)
        assert exitcodes == {0: 0, 1: 0}  # sentinel honored, clean exit
        assert all(h.state == STOPPED for h in handles)
        assert all(not h.alive for h in handles)
        assert multiprocessing.active_children() == []

    def test_drain_escalates_on_deaf_worker(self):
        # A worker that never reads its queue is terminated, not
        # waited on forever.
        sup = _make(target=_deaf_worker)
        sup.check()
        handle = sup.handle(0)
        t0 = time.monotonic()
        exitcodes = sup.drain(timeout=0.5)
        assert time.monotonic() - t0 < 8.0
        assert exitcodes[0] != 0  # terminated, not clean
        assert not handle.alive

    def test_check_after_drain_is_inert(self):
        sup = _make()
        sup.check()
        sup.drain(timeout=10.0)
        sup.check()
        assert sup.handle(0) is None

    def test_monitor_thread_lifecycle(self):
        sup = _make(soft_timeout=5.0, hard_timeout=10.0)
        sup.start()
        try:
            assert sup._monitor.is_alive()
            deadline = time.monotonic() + 10.0
            while sup.handle(0) is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sup.handle(0).alive
        finally:
            sup.drain(timeout=10.0)
        assert not sup._monitor.is_alive()
