"""Codegen-verifier tests: seeded defects must be caught, real units
must pass.

The mutation tests lift real effect IRs (the same static lift the
``--codegen`` CLI gate runs), seed a single classic codegen defect —
an off-by-one loop bound, a dropped write-set entry, a reassociated
expression, a mischarged cycle slot — and assert the verifier reports
a *located* diagnostic with the stable code for exactly that defect
class. The sweep tests assert the converse: every unit the backends
would actually fuse, for both algorithms and all three tiers,
verifies with zero errors (no false positives).

Runs without hypothesis (the property variants skip) and without
cffi (the lift is static by construction).
"""

import re
from dataclasses import replace
from functools import lru_cache
from pathlib import Path

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # the CI lint job has no hypothesis
    HAVE_HYPOTHESIS = False

from repro.exceptions import VerificationError
from repro.experiments.runner import choose_width
from repro.hw.compiled import CompiledExecutor
from repro.problems import benchmark_suite
from repro.serving.arch_cache import build_artifact
from repro.verify import codegen as cg
from repro.verify import (DIAGNOSTIC_CODES, Location, VerificationReport,
                          codegen_report_for_artifact, diagnostics_table,
                          ensure_batch_verified, ensure_codegen_verified,
                          verify_effect_ir)

MUTABLE_BOUNDS = ("elementwise", "flat", "laned", "reduce")

CODEGEN_CODES = (
    "codegen-shape-mismatch", "codegen-index-out-of-bounds",
    "codegen-alias-hazard", "codegen-order-mismatch",
    "codegen-stale-scalar-read", "codegen-scalar-slot-mismatch",
    "codegen-write-set-miss", "codegen-expression-mismatch",
    "codegen-kernel-body-drift", "codegen-cycle-mismatch",
    "codegen-coverage",
)


@lru_cache(maxsize=None)
def suite_entry():
    return list(benchmark_suite(count=1, scale=0.25, seed=7))[0]


@lru_cache(maxsize=None)
def artifact(algorithm):
    entry = suite_entry()
    c = choose_width(entry.problem.nnz)
    return build_artifact(entry.problem, c, algorithm=algorithm)


@lru_cache(maxsize=None)
def lifted_units(algorithm):
    """Every unit the backends would fuse, as (ir, instrs, machine)."""
    art = artifact(algorithm)
    problem = suite_entry().problem
    compiled = art.compiled
    matrices = {"P": problem.P, "A": problem.A, "At": problem.A.transpose()}
    units, skipped = [], [0]

    solo = cg.Machine(compiled.context.c,
                      cg._static_resources(compiled, matrices))
    cg._seed_hbm(solo, compiled, None)
    cg._prepare_buffers(solo, compiled.program.instructions, None)
    solo_exec = CompiledExecutor(solo, jit=False, verify=False)
    cg._solo_units(solo_exec, compiled.program.instructions, units, skipped)

    bm = cg.BatchMachine(compiled.context.c,
                         cg._static_resources(compiled, matrices, batch=2),
                         2)
    cg._seed_hbm(bm, compiled, 2)
    cg._prepare_buffers(bm, compiled.program.instructions, 2)
    batch_exec = cg.BatchExecutor(bm, jit=False, verify=False)
    cg._batch_units(batch_exec, compiled.program.instructions, units,
                    skipped)
    return tuple(units)


def unit_for(tier, algorithm="admm"):
    for ir, instrs, machine in lifted_units(algorithm):
        if ir.tier == tier:
            return ir, instrs, machine
    pytest.skip(f"no {tier} unit in the {algorithm} program")


def clone(ir):
    """Shallow clone safe for statement/table swaps (statements are
    frozen; mutations always build replacements, never edit in place)."""
    return replace(ir, statements=list(ir.statements))


def codes_of(report):
    return {diag.code for diag in report.errors}


# ---------------------------------------------------------------------------
# seeded defects -> located diagnostics with stable codes

@pytest.mark.parametrize("tier,algorithm",
                         [("batch-chunk", "admm"), ("loop", "admm"),
                          ("chunk", "pdqp")])
def test_seeded_off_by_one_bound_is_caught(tier, algorithm):
    ir, instrs, machine = unit_for(tier, algorithm)
    pos, stmt = next((i, s) for i, s in enumerate(ir.statements)
                     if s.index in MUTABLE_BOUNDS and s.bound > 0)
    mutated = clone(ir)
    mutated.statements[pos] = replace(stmt, bound=stmt.bound + 1)
    report = verify_effect_ir(mutated, instrs, machine)
    found = [d for d in report.errors
             if d.code == "codegen-index-out-of-bounds"]
    assert found, report.render()
    assert found[0].location.artifact.startswith("codegen")
    assert str(stmt.instr_index) in found[0].location.path


def test_seeded_dropped_loop_writeback_is_caught():
    ir, instrs, machine = unit_for("loop")
    assert ir.reg_writes, "loop unit writes no scalar registers"
    dropped = sorted(ir.reg_writes)[0]
    mutated = replace(ir, statements=list(ir.statements),
                      reg_writes=frozenset(ir.reg_writes - {dropped}))
    report = verify_effect_ir(mutated, instrs, machine)
    assert "codegen-write-set-miss" in codes_of(report), report.render()
    miss = next(d for d in report.errors
                if d.code == "codegen-write-set-miss")
    assert dropped in miss.message


def test_seeded_phantom_vector_write_is_caught():
    ir, instrs, machine = unit_for("batch-chunk")
    pos, stmt = next((i, s) for i, s in enumerate(ir.statements)
                     if s.dst is not None and s.dst.space == "vb")
    mutated = clone(ir)
    mutated.statements[pos] = replace(stmt,
                                      dst=replace(stmt.dst, name="phantom"))
    report = verify_effect_ir(mutated, instrs, machine)
    assert "codegen-write-set-miss" in codes_of(report), report.render()


@pytest.mark.parametrize("tier,algorithm",
                         [("batch-chunk", "admm"), ("loop", "admm"),
                          ("chunk", "pdqp")])
def test_seeded_rewritten_expression_is_caught(tier, algorithm):
    ir, instrs, machine = unit_for(tier, algorithm)
    pos, stmt = next(
        (i, s) for i, s in enumerate(ir.statements)
        if s.expr and s.op in ("copy", "ewmul", "axpby", "scale_add",
                               "vecdup"))
    mutated = clone(ir)
    mutated.statements[pos] = replace(stmt,
                                      expr=stmt.expr.replace("=", "= 2.0 *",
                                                             1))
    report = verify_effect_ir(mutated, instrs, machine)
    found = [d for d in report.errors
             if d.code == "codegen-expression-mismatch"]
    assert found, report.render()
    assert str(stmt.instr_index) in found[0].location.path


def test_seeded_mischarged_cycle_slot_is_caught():
    ir, instrs, machine = unit_for("loop")
    assert ir.charges, "loop unit has no charge table"
    charges = list(ir.charges)
    cycles, by_class, count = charges[0]
    charges[0] = (cycles + 1, by_class, count)
    mutated = replace(ir, statements=list(ir.statements), charges=charges)
    report = verify_effect_ir(mutated, instrs, machine)
    assert "codegen-cycle-mismatch" in codes_of(report), report.render()


def test_seeded_reordered_statements_are_caught():
    ir, instrs, machine = unit_for("batch-chunk")
    mutated = clone(ir)
    a, b = mutated.statements[0], mutated.statements[1]
    mutated.statements[0] = replace(b)
    mutated.statements[1] = replace(a)
    report = verify_effect_ir(mutated, instrs, machine)
    assert codes_of(report) & {"codegen-order-mismatch",
                               "codegen-expression-mismatch"}, \
        report.render()


if HAVE_HYPOTHESIS:

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_any_bound_inflation_is_caught(data):
        ir, instrs, machine = unit_for("batch-chunk")
        candidates = [(i, s) for i, s in enumerate(ir.statements)
                      if s.index in MUTABLE_BOUNDS and s.bound > 0]
        pos, stmt = data.draw(st.sampled_from(candidates))
        delta = data.draw(st.integers(min_value=1, max_value=10_000))
        mutated = clone(ir)
        mutated.statements[pos] = replace(stmt, bound=stmt.bound + delta)
        report = verify_effect_ir(mutated, instrs, machine)
        assert "codegen-index-out-of-bounds" in codes_of(report)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_any_charge_perturbation_is_caught(data):
        ir, instrs, machine = unit_for("loop")
        charges = list(ir.charges)
        slot = data.draw(st.integers(min_value=0,
                                     max_value=len(charges) - 1))
        delta = data.draw(st.integers(min_value=-50,
                                      max_value=50).filter(bool))
        cycles, by_class, count = charges[slot]
        charges[slot] = (cycles + delta, by_class, count)
        mutated = replace(ir, statements=list(ir.statements),
                          charges=charges)
        report = verify_effect_ir(mutated, instrs, machine)
        assert "codegen-cycle-mismatch" in codes_of(report)


# ---------------------------------------------------------------------------
# no false positives over real units

@pytest.mark.parametrize("algorithm", ["admm", "pdqp"])
def test_every_lifted_unit_verifies_clean(algorithm):
    units = lifted_units(algorithm)
    assert units
    for ir, instrs, machine in units:
        report = verify_effect_ir(ir, instrs, machine)
        assert not report.errors, report.render()


def test_all_three_tiers_are_covered():
    tiers = {ir.tier for algorithm in ("admm", "pdqp")
             for ir, _instrs, _machine in lifted_units(algorithm)}
    assert tiers == {"chunk", "loop", "batch-chunk"}


@pytest.mark.parametrize("algorithm", ["admm", "pdqp"])
def test_artifact_report_passes(algorithm):
    report = codegen_report_for_artifact(artifact(algorithm),
                                         suite_entry().problem, batch=2)
    assert not report.errors, report.render()
    assert "codegen-coverage" in report.codes()


# ---------------------------------------------------------------------------
# guard wiring

def test_ensure_codegen_verified_raises_with_report():
    ir, instrs, machine = unit_for("loop")
    charges = list(ir.charges)
    cycles, by_class, count = charges[0]
    charges[0] = (cycles + 3, by_class, count)
    mutated = replace(ir, statements=list(ir.statements), charges=charges)
    with pytest.raises(VerificationError) as excinfo:
        ensure_codegen_verified(mutated, instrs, machine)
    assert "codegen-cycle-mismatch" in {
        d.code for d in excinfo.value.report.errors}


def test_ensure_codegen_verified_memoizes_acceptance():
    ir, instrs, machine = unit_for("chunk", "pdqp")
    ensure_codegen_verified(ir, instrs, machine)
    assert cg._VERIFIED.get(ir.digest()) is True
    ensure_codegen_verified(ir, instrs, machine)  # cache hit, no raise


def test_batch_guard_runs_codegen_pass_once():
    art = artifact("admm")
    problem = suite_entry().problem
    ensure_batch_verified(art, [problem, problem])
    assert art.codegen_verified is True


def test_env_kill_switch_disables_runtime_guard(monkeypatch):
    _ir, _instrs, machine = unit_for("chunk", "pdqp")
    monkeypatch.setenv("REPRO_VERIFY_CODEGEN", "0")
    assert CompiledExecutor(machine, jit=False).verify is False
    monkeypatch.delenv("REPRO_VERIFY_CODEGEN")
    assert CompiledExecutor(machine, jit=False).verify is True


# ---------------------------------------------------------------------------
# diagnostic-code registry and docs drift

def test_registry_contains_every_codegen_code():
    for code in CODEGEN_CODES:
        assert code in DIAGNOSTIC_CODES


def test_registry_rejects_unregistered_codes():
    report = VerificationReport(subject="t")
    with pytest.raises(ValueError):
        report.error("definitely-not-a-registered-code", "boom",
                     Location("t"))


def test_docs_table_matches_registry():
    doc = (Path(__file__).resolve().parents[1] / "docs"
           / "VERIFY.md").read_text()
    match = re.search(r"<!-- diagnostics-table:begin -->\n(.*?)"
                      r"<!-- diagnostics-table:end -->", doc, re.S)
    assert match, "docs/VERIFY.md lost its diagnostics-table markers"
    assert match.group(1).strip() == diagnostics_table().strip(), (
        "docs/VERIFY.md diagnostics table drifted from the registry; "
        "regenerate it with `python -m repro.verify --codes`")
