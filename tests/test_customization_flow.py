"""Tests for the structure search, the metric, permutation adaptation,
and the end-to-end customization flow."""

import numpy as np
import pytest

from repro.customization import (adapt_problem, baseline_customization,
                                 candidate_patterns, customize_problem,
                                 evaluate_architecture, match_score,
                                 parse_architecture, search_architecture,
                                 sort_constraints_by_encoding)
from repro.encoding import encode_matrix
from repro.problems import (generate_control, generate_eqqp,
                            generate_portfolio, generate_svm)
from repro.sparse import CSRMatrix


class TestMetric:
    def test_perfect_match(self):
        assert match_score(nnz=100, length=10, ep=0, ec=1.0) == 1.0

    def test_worse_customization_lower_eta(self):
        good = match_score(100, 10, ep=5, ec=1.5)
        bad = match_score(100, 10, ep=50, ec=8.0)
        assert 0 < bad < good < 1.0

    def test_range(self):
        eta = match_score(1000, 100, ep=123, ec=3.0)
        assert 0.0 < eta <= 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            match_score(-1, 10, 0, 1)
        with pytest.raises(ValueError):
            match_score(1, 10, 0, -1)

    def test_degenerate_empty(self):
        assert match_score(0, 0, 0, 1.0) == 1.0


class TestSearch:
    def test_candidates_include_homogeneous_full_width(self):
        text = "a" * 100
        cands = candidate_patterns(text, 16)
        assert "a" * 16 in cands

    def test_search_improves_on_structured_string(self):
        # Matrix with many (2,2)-row pairs: bb structures pay off.
        dense = np.zeros((60, 16))
        for i in range(60):
            dense[i, (2 * i) % 14:(2 * i) % 14 + 2] = 1.0
        enc = encode_matrix(CSRMatrix.from_dense(dense), 16)
        result = search_architecture([enc], 16, max_structures=3)
        assert result.cycles < result.baseline_cycles
        assert result.improvement > 1.5

    def test_search_respects_budget(self):
        prob = generate_portfolio(60, seed=0)
        enc = encode_matrix(prob.A, 16)
        result = search_architecture([enc], 16, max_structures=2)
        # Budget excludes the implicit full-width root structure.
        assert result.architecture.n_structures <= 3

    def test_search_on_unstructured_string_degrades_gracefully(self):
        # eqqp-like: long dense rows, few repeats -> small improvement.
        prob = generate_eqqp(60, seed=0)
        enc_p = encode_matrix(prob.P, 16)
        result = search_architecture([enc_p], 16, max_structures=4)
        assert result.cycles <= result.baseline_cycles

    def test_search_requires_encodings(self):
        with pytest.raises(ValueError):
            search_architecture([], 16)


class TestCustomizeProblem:
    def test_full_flow_improves_eta(self):
        prob = generate_portfolio(80, seed=1)
        base = baseline_customization(prob, 16)
        custom = customize_problem(prob, 16, max_structures=4)
        assert custom.eta > base.eta
        assert 0 < base.eta < 1 and 0 < custom.eta <= 1

    def test_streams_all_three_matrices(self):
        prob = generate_svm(20, seed=2)
        custom = customize_problem(prob, 16)
        assert set(custom.matrices) == {"P", "A", "At"}
        assert custom.total_nnz == prob.P.nnz + 2 * prob.A.nnz

    def test_baseline_has_ec_equal_c(self):
        prob = generate_control(6, seed=3)
        base = baseline_customization(prob, 16)
        for m in base.matrices.values():
            assert m.ec == pytest.approx(16.0)

    def test_customized_ec_below_baseline(self):
        prob = generate_control(6, seed=3)
        base = baseline_customization(prob, 16)
        custom = customize_problem(prob, 16)
        for name in custom.matrices:
            assert custom.matrices[name].ec <= base.matrices[name].ec

    def test_evaluate_named_architecture(self):
        prob = generate_svm(20, seed=4)
        arch = parse_architecture("16{16a2d1e}")
        custom = evaluate_architecture(prob, arch)
        assert custom.architecture == arch
        assert custom.total_ep >= 0

    def test_eqqp_improves_least(self):
        # The paper's observation: eqqp's unstructured strings benefit
        # least from customization.
        eqqp = generate_eqqp(80, seed=5)
        ctrl = generate_control(8, seed=5)
        gain_eqqp = (customize_problem(eqqp, 16).eta
                     - baseline_customization(eqqp, 16).eta)
        gain_ctrl = (customize_problem(ctrl, 16).eta
                     - baseline_customization(ctrl, 16).eta)
        assert gain_ctrl > gain_eqqp

    def test_summary_renders(self):
        prob = generate_svm(16, seed=6)
        custom = customize_problem(prob, 16)
        text = custom.summary()
        assert "eta" in text and "A" in text


class TestPermutation:
    def test_sorted_constraints_cluster_characters(self):
        prob = generate_portfolio(50, seed=7)
        adapted, perm = sort_constraints_by_encoding(prob, 16)
        enc = encode_matrix(adapted.A, 16)
        # After sorting, the string's runs are at least as long: count
        # character transitions.
        orig = encode_matrix(prob.A, 16).string
        transitions = sum(1 for a, b in zip(orig, orig[1:]) if a != b)
        sorted_transitions = sum(1 for a, b in zip(enc.string, enc.string[1:])
                                 if a != b)
        assert sorted_transitions <= transitions

    def test_constraint_sort_preserves_problem(self):
        prob = generate_svm(12, seed=8)
        adapted, perm = sort_constraints_by_encoding(prob, 16)
        x = np.random.default_rng(0).standard_normal(prob.n)
        assert np.isclose(adapted.primal_residual(x),
                          prob.primal_residual(x))

    def test_adapt_problem_returns_permutations(self):
        prob = generate_svm(12, seed=9)
        adapted, n_perm, m_perm = adapt_problem(prob, 16,
                                                sort_variables=True)
        np.testing.assert_array_equal(np.sort(n_perm), np.arange(prob.n))
        np.testing.assert_array_equal(np.sort(m_perm), np.arange(prob.m))

    def test_constraint_sorting_does_not_hurt_ep(self):
        prob = generate_portfolio(50, seed=10)
        adapted, _, _ = adapt_problem(prob, 16)
        base = customize_problem(prob, 16)
        after = customize_problem(adapted, 16)
        # Sorting creates longer runs; Ep should not get worse by much.
        assert after.total_ep <= base.total_ep * 1.1
