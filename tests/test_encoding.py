"""Tests for the sparsity-string encoding and LZW search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (FULL_CHUNK, alphabet_for, char_capacity,
                            encode_matrix, encode_row_nnz, lzw_candidates,
                            lzw_compress, nnz_to_char)
from repro.exceptions import EncodingError
from repro.sparse import CSRMatrix

from helpers import random_dense


class TestAlphabet:
    def test_alphabet_sizes(self):
        assert alphabet_for(1) == "a"
        assert alphabet_for(4) == "abc"
        assert alphabet_for(16) == "abcde"
        assert alphabet_for(64) == "abcdefg"

    def test_rejects_non_power_of_two(self):
        with pytest.raises(EncodingError):
            alphabet_for(12)
        with pytest.raises(EncodingError):
            alphabet_for(0)

    def test_char_capacity(self):
        assert char_capacity("a", 16) == 1
        assert char_capacity("b", 16) == 2
        assert char_capacity("e", 16) == 16
        assert char_capacity(FULL_CHUNK, 16) == 16
        assert char_capacity("g", 64) == 64

    def test_char_capacity_out_of_alphabet(self):
        with pytest.raises(EncodingError):
            char_capacity("f", 16)  # f needs C >= 32
        with pytest.raises(EncodingError):
            char_capacity("!", 16)

    def test_nnz_to_char_buckets(self):
        # Paper: rows with <= 1, 2, 4, ..., 64 map to a, b, c, ..., g.
        assert nnz_to_char(0, 64) == "a"
        assert nnz_to_char(1, 64) == "a"
        assert nnz_to_char(2, 64) == "b"
        assert nnz_to_char(3, 64) == "c"
        assert nnz_to_char(4, 64) == "c"
        assert nnz_to_char(5, 64) == "d"
        assert nnz_to_char(8, 64) == "d"
        assert nnz_to_char(9, 64) == "e"
        assert nnz_to_char(64, 64) == "g"

    def test_nnz_to_char_rejects_overflow(self):
        with pytest.raises(EncodingError):
            nnz_to_char(65, 64)

    def test_encode_row_nnz_long_rows(self):
        # Rows longer than C break into $ chunks plus remainder.
        assert encode_row_nnz(150, 64) == "$$f"  # 150 = 64+64+22 -> f
        assert encode_row_nnz(128, 64) == "$$"
        assert encode_row_nnz(0, 64) == "a"

    @given(st.integers(0, 2000), st.sampled_from([4, 16, 64]))
    @settings(max_examples=80, deadline=None)
    def test_encode_row_capacity_covers_nnz(self, nnz, c):
        enc = encode_row_nnz(nnz, c)
        capacity = sum(char_capacity(ch, c) for ch in enc)
        assert capacity >= nnz
        # Bucketing wastes at most half of each non-$ slot.
        assert capacity <= max(2 * nnz, 1) + c


class TestEncodeMatrix:
    def test_paper_figure2_example(self):
        # Figure 2(a): rows with 4,2,2,1,1,1,3,1 nnz at C = 4 encode as
        # "dbbaaaca" with buckets a<=1, b<=2, c<=4 ... here C=4 so
        # alphabet is "abc": 4 -> c, 2 -> b, 3 -> c. The paper's d/c on a
        # 4-wide example uses per-count letters; with log2 buckets the
        # equivalent encoding is "cbbaaaca"[sic]. Verify bucket logic.
        rows = [4, 2, 2, 1, 1, 1, 3, 1]
        dense = np.zeros((8, 8))
        for i, k in enumerate(rows):
            dense[i, :k] = 1.0
        enc = encode_matrix(CSRMatrix.from_dense(dense), 4)
        assert enc.string == "cbbaaaca"

    def test_empty_rows_encode_as_a(self):
        dense = np.array([[1.0, 1.0], [0.0, 0.0], [1.0, 0.0]])
        enc = encode_matrix(CSRMatrix.from_dense(dense), 4)
        assert enc.string == "baa"
        assert enc.chunks[1].length == 0

    def test_long_row_chunking(self, rng):
        dense = np.zeros((2, 40))
        dense[0, :] = 1.0   # 40 nnz at C=16 -> $$d (40 = 16+16+8)
        dense[1, :3] = 1.0
        enc = encode_matrix(CSRMatrix.from_dense(dense), 16)
        assert enc.string == "$$dc"
        firsts = [ch.first for ch in enc.chunks]
        assert firsts == [True, False, False, True]

    def test_chunk_columns_roundtrip(self, rng):
        dense = random_dense(rng, 10, 12, 0.4)
        mat = CSRMatrix.from_dense(dense)
        enc = encode_matrix(mat, 8)
        # The union of all chunk columns per row equals the row support.
        for row in range(10):
            cols = np.concatenate([
                enc.chunk_columns(chk) for chk in enc.chunks
                if chk.row == row]) if any(c.row == row
                                           for c in enc.chunks) else []
            np.testing.assert_array_equal(np.sort(cols),
                                          np.flatnonzero(dense[row]))

    def test_total_chunk_length_equals_nnz(self, rng):
        dense = random_dense(rng, 20, 30, 0.3)
        enc = encode_matrix(CSRMatrix.from_dense(dense), 8)
        assert sum(c.length for c in enc.chunks) == enc.nnz

    def test_histogram(self):
        dense = np.diag(np.ones(5))
        enc = encode_matrix(CSRMatrix.from_dense(dense), 4)
        assert enc.histogram() == {"a": 5}

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 1000),
           st.sampled_from([4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_string_length_matches_chunks(self, m, n, seed, c):
        rng = np.random.default_rng(seed)
        dense = random_dense(rng, m, n, 0.5)
        enc = encode_matrix(CSRMatrix.from_dense(dense), c)
        assert len(enc.string) == len(enc.chunks)
        assert len(enc.string) >= m  # at least one char per row


class TestLZW:
    def test_compress_empty(self):
        result = lzw_compress("")
        assert result.codes == []

    def test_compress_roundtrip_codes(self):
        # Classic sanity: decode by reversing the dictionary.
        text = "abababab"
        result = lzw_compress(text)
        inverse = {v: k for k, v in result.dictionary.items()}
        decoded = "".join(inverse[c] for c in result.codes)
        assert decoded == text

    def test_repeated_substring_enters_dictionary(self):
        result = lzw_compress("dbdbdbdbdb")
        assert "db" in result.dictionary

    def test_candidates_scored_by_savings(self):
        text = "ddddddddddddaaaa" * 4
        cands = lzw_candidates(text)
        assert cands  # something repeats
        # A length-k phrase occurring t times scores (k-1)*t.
        for phrase, score in cands.items():
            assert score >= len(phrase) - 1

    def test_candidates_respect_length_bounds(self):
        text = "abcabcabcabc" * 3
        cands = lzw_candidates(text, min_length=3, max_length=3)
        assert all(len(p) == 3 for p in cands)

    def test_no_candidates_in_unique_text(self):
        assert lzw_candidates("abcdefg") == {}
