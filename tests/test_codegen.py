"""Tests for HLS code generation and the Figure 6 flow."""

import json

import numpy as np
import pytest

from repro.codegen import (emit_alignment_switch, emit_cvb_tables,
                           emit_mac_tree, emit_spmv_align_function,
                           generate_hardware)
from repro.customization import (baseline_architecture, build_cvb,
                                 parse_architecture, schedule)
from repro.encoding import encode_matrix
from repro.problems import generate_svm
from repro.sparse import CSRMatrix


class TestAlignmentSwitch:
    def test_baseline_is_single_assignment(self):
        code = emit_alignment_switch(baseline_architecture(16))
        assert "align_out[0] << acc_pack.data[0];" in code
        assert "switch (" not in code

    def test_customized_has_case_per_width(self):
        arch = parse_architecture("16{16a2d1e}")
        code = emit_alignment_switch(arch)
        assert "case 16:" in code
        assert "case 2:" in code
        assert "case 1:" in code
        assert "align_ptr = (align_ptr + acc_cnt) % 16;" in code

    def test_rotation_covers_all_buffer_slots(self):
        arch = parse_architecture("16{2d1e}")
        code = emit_alignment_switch(arch)
        # Inner switch enumerates every alignment pointer position (the
        # pack width is the widest output case: 2).
        for i in range(2):
            assert f"\tcase {i}:" in code


class TestSpMVAlignFunction:
    def test_contains_hls_pragmas_and_include(self):
        code = emit_spmv_align_function(parse_architecture("16{16a1e}"))
        assert "#pragma HLS pipeline II = 1" in code
        assert '#include "align_acc_cnt_switch.h"' in code
        assert "CNT_AS_FADD_FLAG" in code


class TestMACTree:
    def test_lists_all_structures(self):
        arch = parse_architecture("16{16a2d1e}")
        code = emit_mac_tree(arch)
        assert "'aaaaaaaaaaaaaaaa'" in code
        assert "'dd'" in code
        assert "'e'" in code
        assert "16 multipliers, 15 adders" in code

    def test_tap_lane_ranges(self):
        code = emit_mac_tree(parse_architecture("16{2d1e}"))
        assert "reduce(lanes[0..7])" in code
        assert "reduce(lanes[8..15])" in code


class TestCVBTables:
    def test_tables_cover_requests(self):
        dense = np.zeros((4, 6))
        dense[0, 0] = dense[0, 1] = 1.0
        dense[1, 2] = dense[1, 3] = 1.0
        mat = CSRMatrix.from_dense(dense)
        enc = encode_matrix(mat, 4)
        sched = schedule(enc, baseline_architecture(4))
        layout = build_cvb(sched)
        code = emit_cvb_tables(layout, "A")
        assert f"cvb_depth_A = {layout.depth};" in code
        assert "xlate_A_bank0" in code
        assert "dup_A_row0" in code


class TestGenerateHardware:
    def test_flow_produces_all_files(self, tmp_path):
        prob = generate_svm(12, seed=0)
        design = generate_hardware(prob, c=16, max_structures=3)
        expected = {"align_acc_cnt_switch.h", "spmv_align.cpp",
                    "mac_tree.txt", "cvb_P.h", "cvb_A.h", "cvb_At.h"}
        assert expected == set(design.files)
        out = design.write_to(tmp_path / "design")
        for filename in expected:
            assert (out / filename).exists()
        manifest = json.loads((out / "build_manifest.json").read_text())
        assert manifest["fits_u50"] is True
        assert 0 < manifest["eta"] <= 1
        assert manifest["fmax_mhz"] <= 300.0

    def test_manifest_reports_resources(self):
        prob = generate_svm(12, seed=1)
        design = generate_hardware(prob, c=16)
        res = design.manifest["resources"]
        assert res["dsp"] == 80  # 5 x C
        assert res["ff"] > 0 and res["lut"] > 0


class TestCodegenCLI:
    def test_cli_generates_design(self, tmp_path, capsys):
        from repro.codegen.__main__ import main
        out = tmp_path / "design"
        assert main(["--family", "svm", "--size", "16", "--c", "16",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "architecture" in printed
        assert (out / "build_manifest.json").exists()
        assert (out / "spmv_align.cpp").exists()

    def test_cli_rejects_unknown_family(self):
        from repro.codegen.__main__ import main
        with pytest.raises(SystemExit):
            main(["--family", "bogus", "--size", "10"])
