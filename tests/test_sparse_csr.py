"""Unit and property-based tests for repro.sparse.csr."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.sparse import CSRMatrix

from helpers import random_dense


def small_dense_matrices():
    shapes = st.tuples(st.integers(1, 8), st.integers(1, 8))
    return shapes.flatmap(lambda s: arrays(
        np.float64, s,
        elements=st.sampled_from([0.0, 0.0, 1.0, -2.0, 0.5, 3.25])))


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = random_dense(rng, 7, 5)
        mat = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(mat.to_dense(), dense)

    def test_from_dense_drops_zeros(self):
        mat = CSRMatrix.from_dense([[0.0, 1.0], [0.0, 0.0]])
        assert mat.nnz == 1

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_dense(np.zeros(3))

    def test_from_coo_sums_duplicates(self):
        mat = CSRMatrix.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0], (2, 2))
        expected = np.array([[0.0, 5.0], [1.0, 0.0]])
        np.testing.assert_allclose(mat.to_dense(), expected)

    def test_from_coo_cancelling_duplicates_keep_stored_entry(self):
        mat = CSRMatrix.from_coo([0, 0], [0, 0], [1.0, -1.0], (1, 1))
        # Stored entry with value 0 remains; prune removes it.
        assert mat.nnz == 1
        assert mat.prune().nnz == 0

    def test_from_coo_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_coo([0], [5], [1.0], (2, 2))
        with pytest.raises(ShapeError):
            CSRMatrix.from_coo([7], [0], [1.0], (2, 2))

    def test_zeros(self):
        z = CSRMatrix.zeros((3, 4))
        assert z.nnz == 0
        np.testing.assert_allclose(z.to_dense(), np.zeros((3, 4)))

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ShapeError):
            CSRMatrix((2, 2), [1.0], [0], [0, 2, 1])

    def test_noncanonical_rows_rejected(self):
        # Columns out of order within a row.
        with pytest.raises(ShapeError):
            CSRMatrix((1, 3), [1.0, 2.0], [2, 0], [0, 2])

    @given(small_dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip_property(self, dense):
        mat = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(mat.to_dense(), dense)
        assert mat.nnz == np.count_nonzero(dense)


class TestLinearOps:
    def test_matvec_matches_dense(self, rng):
        dense = random_dense(rng, 9, 6)
        x = rng.standard_normal(6)
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).matvec(x),
                                   dense @ x)

    def test_matvec_empty_rows(self):
        dense = np.array([[0.0, 0.0], [1.0, 2.0], [0.0, 0.0]])
        x = np.array([3.0, 4.0])
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).matvec(x),
                                   dense @ x)

    def test_matvec_shape_error(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 3, 4))
        with pytest.raises(ShapeError):
            mat.matvec(np.zeros(3))

    def test_rmatvec_matches_dense(self, rng):
        dense = random_dense(rng, 9, 6)
        y = rng.standard_normal(9)
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).rmatvec(y),
                                   dense.T @ y)

    def test_rmatvec_shape_error(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 3, 4))
        with pytest.raises(ShapeError):
            mat.rmatvec(np.zeros(4))

    def test_matmul_operator(self, rng):
        dense = random_dense(rng, 4, 4)
        x = rng.standard_normal(4)
        np.testing.assert_allclose(CSRMatrix.from_dense(dense) @ x, dense @ x)

    @given(small_dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_matvec_property(self, dense):
        x = np.linspace(-1.0, 1.0, dense.shape[1])
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).matvec(x),
                                   dense @ x, atol=1e-12)

    def test_diagonal(self, rng):
        dense = random_dense(rng, 5, 7)
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).diagonal(),
                                   np.diag(dense))

    def test_column_sq_sums(self, rng):
        dense = random_dense(rng, 6, 4)
        np.testing.assert_allclose(
            CSRMatrix.from_dense(dense).column_sq_sums(),
            (dense ** 2).sum(axis=0))


class TestStructure:
    def test_transpose(self, rng):
        dense = random_dense(rng, 5, 8)
        np.testing.assert_allclose(
            CSRMatrix.from_dense(dense).transpose().to_dense(), dense.T)

    def test_permute_rows(self, rng):
        dense = random_dense(rng, 6, 4)
        perm = rng.permutation(6)
        out = CSRMatrix.from_dense(dense).permute_rows(perm)
        np.testing.assert_allclose(out.to_dense(), dense[perm])

    def test_permute_cols(self, rng):
        dense = random_dense(rng, 4, 6)
        perm = rng.permutation(6)
        out = CSRMatrix.from_dense(dense).permute_cols(perm)
        np.testing.assert_allclose(out.to_dense(), dense[:, perm])

    def test_permute_rejects_non_permutation(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 3, 3))
        with pytest.raises(ShapeError):
            mat.permute_rows([0, 0, 1])
        with pytest.raises(ShapeError):
            mat.permute_cols([0, 1])

    def test_scale_rows_cols(self, rng):
        dense = random_dense(rng, 4, 5)
        mat = CSRMatrix.from_dense(dense)
        d_r, d_c = rng.standard_normal(4), rng.standard_normal(5)
        np.testing.assert_allclose(mat.scale_rows(d_r).to_dense(),
                                   np.diag(d_r) @ dense)
        np.testing.assert_allclose(mat.scale_cols(d_c).to_dense(),
                                   dense @ np.diag(d_c))

    def test_triu_tril(self, rng):
        dense = random_dense(rng, 6, 6, density=0.8)
        mat = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(mat.triu().to_dense(), np.triu(dense))
        np.testing.assert_allclose(mat.tril().to_dense(), np.tril(dense))
        np.testing.assert_allclose(mat.triu(1).to_dense(), np.triu(dense, 1))

    def test_row_nnz(self):
        dense = np.array([[1.0, 2.0], [0.0, 0.0], [3.0, 0.0]])
        np.testing.assert_array_equal(
            CSRMatrix.from_dense(dense).row_nnz(), [2, 0, 1])

    def test_row_view(self):
        dense = np.array([[0.0, 5.0, 6.0], [7.0, 0.0, 0.0]])
        cols, vals = CSRMatrix.from_dense(dense).row(0)
        np.testing.assert_array_equal(cols, [1, 2])
        np.testing.assert_allclose(vals, [5.0, 6.0])

    def test_prune_tolerance(self):
        mat = CSRMatrix.from_dense([[1e-12, 1.0], [0.5, 0.0]])
        pruned = mat.prune(1e-9)
        assert pruned.nnz == 2

    def test_copy_is_independent(self, rng):
        mat = CSRMatrix.from_dense(random_dense(rng, 3, 3))
        cp = mat.copy()
        cp.data[:] = 0.0
        assert not np.allclose(mat.data, cp.data) or mat.nnz == 0


class TestArithmetic:
    def test_add(self, rng):
        a = random_dense(rng, 4, 4)
        b = random_dense(rng, 4, 4)
        out = CSRMatrix.from_dense(a) + CSRMatrix.from_dense(b)
        np.testing.assert_allclose(out.to_dense(), a + b)

    def test_add_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            CSRMatrix.zeros((2, 2)) + CSRMatrix.zeros((3, 3))

    def test_scalar_multiply(self, rng):
        a = random_dense(rng, 3, 5)
        out = 2.5 * CSRMatrix.from_dense(a)
        np.testing.assert_allclose(out.to_dense(), 2.5 * a)

    def test_allclose(self, rng):
        a = random_dense(rng, 3, 3)
        assert CSRMatrix.from_dense(a).allclose(CSRMatrix.from_dense(a.copy()))
        assert not CSRMatrix.from_dense(a).allclose(CSRMatrix.zeros((2, 2)))


class TestMatMul:
    def test_matches_dense_product(self, rng):
        a = random_dense(rng, 5, 7, 0.4)
        b = random_dense(rng, 7, 4, 0.4)
        out = CSRMatrix.from_dense(a).matmul(CSRMatrix.from_dense(b))
        np.testing.assert_allclose(out.to_dense(), a @ b, atol=1e-12)

    def test_matmul_operator_dispatch(self, rng):
        a = CSRMatrix.from_dense(random_dense(rng, 3, 3, 0.6))
        b = CSRMatrix.from_dense(random_dense(rng, 3, 3, 0.6))
        np.testing.assert_allclose((a @ b).to_dense(),
                                   a.to_dense() @ b.to_dense(),
                                   atol=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        a = CSRMatrix.from_dense(random_dense(rng, 3, 4, 0.5))
        b = CSRMatrix.from_dense(random_dense(rng, 3, 4, 0.5))
        with pytest.raises(ShapeError):
            a.matmul(b)
        with pytest.raises(ShapeError):
            a.matmul(np.eye(4))

    def test_empty_product(self):
        a = CSRMatrix.zeros((3, 5))
        b = CSRMatrix.zeros((5, 2))
        out = a.matmul(b)
        assert out.shape == (3, 2) and out.nnz == 0
