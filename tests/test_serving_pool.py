"""WorkerPool across serial/thread/process modes: job correctness,
crash propagation through futures, and shutdown semantics."""

import operator

import numpy as np
import pytest

from repro.problems import generate_svm
from repro.serving import WorkerPool
from repro.serving.arch_cache import build_artifact
from repro.serving.pool import reference_job, solve_job
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)

MODES = ("serial", "thread", "process")


# Module-level so the process pool can pickle them.
def _square(x):
    return x * x


def _boom():
    raise RuntimeError("worker exploded")


@pytest.fixture(scope="module")
def svm_setup():
    problem = generate_svm(10, seed=0)
    artifact = build_artifact(problem, 16)
    return problem, artifact


class TestModes:
    @pytest.mark.parametrize("mode", MODES)
    def test_plain_function_round_trip(self, mode):
        with WorkerPool(workers=2, mode=mode) as pool:
            futures = [pool.submit(_square, i) for i in range(8)]
            assert [f.result(timeout=60) for f in futures] == \
                [i * i for i in range(8)]

    @pytest.mark.parametrize("mode", MODES)
    def test_solve_job_all_modes(self, mode, svm_setup):
        problem, artifact = svm_setup
        with WorkerPool(workers=2, mode=mode) as pool:
            result = pool.submit(solve_job, problem, artifact,
                                 SETTINGS).result(timeout=120)
        assert result.converged
        assert problem.primal_residual(result.x) < 1e-2

    def test_reference_job_matches_solve_job(self, svm_setup):
        problem, artifact = svm_setup
        with WorkerPool(workers=1, mode="serial") as pool:
            acc = pool.submit(solve_job, problem, artifact,
                              SETTINGS).result()
            ref = pool.submit(reference_job, problem, SETTINGS).result()
        assert ref.status.is_optimal
        assert np.isclose(problem.objective(acc.x), ref.info.obj_val,
                          rtol=1e-2, atol=1e-3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            WorkerPool(mode="fiber")
        with pytest.raises(ValueError):
            WorkerPool(workers=0)


class TestCrashPropagation:
    @pytest.mark.parametrize("mode", MODES)
    def test_exception_surfaces_via_future(self, mode):
        with WorkerPool(workers=1, mode=mode) as pool:
            future = pool.submit(_boom)
            with pytest.raises(RuntimeError, match="worker exploded"):
                future.result(timeout=60)

    @pytest.mark.parametrize("mode", MODES)
    def test_picklable_builtin_crash(self, mode):
        # operator.truediv is importable from any worker process.
        with WorkerPool(workers=1, mode=mode) as pool:
            future = pool.submit(operator.truediv, 1, 0)
            with pytest.raises(ZeroDivisionError):
                future.result(timeout=60)

    @pytest.mark.parametrize("mode", MODES)
    def test_pool_survives_a_crash(self, mode):
        with WorkerPool(workers=1, mode=mode) as pool:
            with pytest.raises(ZeroDivisionError):
                pool.submit(operator.truediv, 1, 0).result(timeout=60)
            assert pool.submit(_square, 3).result(timeout=60) == 9


class TestShutdown:
    @pytest.mark.parametrize("mode", MODES)
    def test_close_is_idempotent(self, mode):
        pool = WorkerPool(workers=1, mode=mode)
        pool.shutdown()
        pool.shutdown()  # second call is a no-op
        pool.shutdown(wait=False)

    @pytest.mark.parametrize("mode", MODES)
    def test_submit_after_shutdown_raises(self, mode):
        pool = WorkerPool(workers=1, mode=mode)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(_square, 1)

    def test_context_manager_shuts_down(self):
        with WorkerPool(workers=1, mode="serial") as pool:
            pass
        with pytest.raises(RuntimeError):
            pool.submit(_square, 1)

    @pytest.mark.parametrize("mode", ("serial", "thread"))
    def test_pending_work_completes_on_shutdown(self, mode):
        pool = WorkerPool(workers=1, mode=mode)
        futures = [pool.submit(_square, i) for i in range(4)]
        pool.shutdown(wait=True)
        assert [f.result() for f in futures] == [0, 1, 4, 9]


class TestHardShutdown:
    @pytest.mark.parametrize("mode", ("thread", "process"))
    def test_cancel_pending_leaves_no_unresolved_futures(self, mode):
        import time as _time

        with WorkerPool(workers=1, mode=mode) as warm:
            # Prime the process pool outside the timed region.
            warm.submit(_square, 1).result(timeout=60)
        pool = WorkerPool(workers=1, mode=mode)
        blocker = pool.submit(_time.sleep, 0.5)
        queued = [pool.submit(_square, i) for i in range(8)]
        pool.shutdown(wait=True, cancel_pending=True)
        # The running job finishes; every queued one is cancelled —
        # no future is left forever unresolved.
        assert blocker.done()
        for future in queued:
            assert future.done()
        assert any(f.cancelled() for f in queued)

    def test_cancel_pending_on_serial_pool_is_noop(self):
        pool = WorkerPool(workers=1, mode="serial")
        future = pool.submit(_square, 2)
        pool.shutdown(wait=True, cancel_pending=True)
        assert future.result() == 4
