"""Pass 3 (cycle bounds): static bounds bracket the interpreter's
dynamic counts; the compiled cost model is cross-checked."""

import pytest

from repro.hw import RSQPAccelerator
from repro.hw.isa import Control, Loop, Program, ScalarOp, ScalarOpKind
from repro.problems import generate_control, generate_svm
from repro.solver import OSQPSettings
from repro.verify import (CycleBounds, block_bounds, program_bounds,
                          verify_compiled)

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=60)


class TestBoundsVsInterpreter:
    @pytest.mark.parametrize("make_problem", [
        lambda: generate_svm(10, seed=0),
        lambda: generate_control(4, horizon=4, seed=1),
    ])
    def test_dynamic_count_within_static_bounds(self, make_problem):
        acc = RSQPAccelerator(make_problem(), settings=SETTINGS)
        bounds = program_bounds(acc.compiled.program,
                                acc.compiled.context)
        assert 0 < bounds.min_cycles <= bounds.max_cycles
        # Run the full lowered program through the interpreter on the
        # freshly downloaded machine: the dynamic total must land
        # inside the static bracket, wherever the Controls fire.
        stats = acc.machine.run(acc.compiled.program)
        assert bounds.contains(stats.total_cycles), (
            f"{stats.total_cycles} outside "
            f"[{bounds.min_cycles}, {bounds.max_cycles}]")

    def test_unconverging_run_still_bracketed(self):
        tight = OSQPSettings(eps_abs=1e-14, eps_rel=1e-14, max_iter=40)
        acc = RSQPAccelerator(generate_svm(10, seed=2), settings=tight)
        bounds = program_bounds(acc.compiled.program,
                                acc.compiled.context)
        stats = acc.machine.run(acc.compiled.program)
        assert bounds.contains(stats.total_cycles)


class TestBlockBounds:
    def test_straight_line_is_exact(self):
        items = [ScalarOp(ScalarOpKind.MOV, "a", "s"),
                 ScalarOp(ScalarOpKind.MOV, "b", "a")]
        bounds = block_bounds(items, None)  # ScalarOp cost ignores context
        assert bounds == CycleBounds(2, 2)

    def test_loop_without_control_min_is_one_trip(self):
        loop = Loop(body=[ScalarOp(ScalarOpKind.MOV, "a", "s")],
                    max_iter=5, name="l")
        bounds = block_bounds([loop], None)
        assert bounds.min_cycles == 1   # one full trip
        assert bounds.max_cycles == 5   # max_iter trips

    def test_loop_min_is_prefix_through_first_control(self):
        loop = Loop(body=[ScalarOp(ScalarOpKind.MOV, "a", "s"),
                          Control("a", "thr"),
                          ScalarOp(ScalarOpKind.MOV, "b", "s")],
                    max_iter=4, name="l")
        bounds = block_bounds([loop], None)
        assert bounds.min_cycles == 2   # mov + control, exit fires
        assert bounds.max_cycles == 4 * 3

    def test_dead_loop_costs_nothing(self):
        loop = Loop(body=[ScalarOp(ScalarOpKind.MOV, "a", "s")],
                    max_iter=0, name="dead")
        assert block_bounds([loop], None) == CycleBounds(0, 0)

    def test_program_bounds_wraps_block(self):
        program = Program([ScalarOp(ScalarOpKind.MOV, "a", "s")])
        assert program_bounds(program, None) == CycleBounds(1, 1)


class TestCompiledCostCrossCheck:
    def make_acc(self):
        return RSQPAccelerator(generate_svm(10, seed=3),
                               settings=SETTINGS)

    def test_compiler_costs_are_consistent(self):
        report = verify_compiled(self.make_acc().compiled)
        assert report.ok, report.render()

    def test_inflated_section_cost_is_caught(self):
        compiled = self.make_acc().compiled
        compiled.prologue_cycles += 7
        report = verify_compiled(compiled)
        codes = {d.code for d in report.errors}
        assert codes == {"cycle-cost-mismatch"}
        assert any("prologue" in d.message for d in report.errors)

    def test_missing_section_table_is_caught(self):
        compiled = self.make_acc().compiled
        compiled._sections = {}
        report = verify_compiled(compiled)
        assert "missing-sections" in {d.code for d in report.errors}

    def test_claimed_costs_bracketized(self):
        """The analytic per-trip costs, scaled by actual trip counts,
        stay inside the whole-program static bounds."""
        acc = self.make_acc()
        res = acc.run()
        bounds = program_bounds(acc.compiled.program,
                                acc.compiled.context)
        estimate = acc.estimate_cycles(res.admm_iterations,
                                       res.pcg_iterations,
                                       rho_updates=acc.rho_updates)
        refresh = estimate - acc.compiled.estimate_cycles(
            res.admm_iterations, res.pcg_iterations)
        assert bounds.contains(estimate - refresh)
