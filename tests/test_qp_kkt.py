"""Tests for KKT assembly and the reduced KKT operator."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.qp import ReducedKKTOperator, assemble_kkt_upper
from repro.sparse import CSRMatrix

from helpers import random_dense, random_spd_dense


class TestAssembleKKT:
    def test_matches_dense_block_matrix(self, rng):
        n, m = 5, 3
        p = random_spd_dense(rng, n, 0.4)
        a = random_dense(rng, m, n, 0.5)
        sigma, rho = 1e-6, 0.2
        rho_vec = np.full(m, rho)
        kkt = assemble_kkt_upper(CSRMatrix.from_dense(p),
                                 CSRMatrix.from_dense(a), sigma, rho_vec)
        expected = np.block([[p + sigma * np.eye(n), a.T],
                             [a, -np.eye(m) / rho]])
        dense_upper = kkt.to_dense()
        full = dense_upper + dense_upper.T - np.diag(np.diag(dense_upper))
        np.testing.assert_allclose(full, expected, atol=1e-12)

    def test_vector_rho(self, rng):
        n, m = 3, 4
        p = random_spd_dense(rng, n, 0.5)
        a = random_dense(rng, m, n, 0.5)
        rho_vec = np.array([0.1, 1.0, 10.0, 100.0])
        kkt = assemble_kkt_upper(CSRMatrix.from_dense(p),
                                 CSRMatrix.from_dense(a), 1e-6, rho_vec)
        diag = kkt.to_dense().diagonal()
        np.testing.assert_allclose(diag[n:], -1.0 / rho_vec)

    def test_diagonal_always_present(self, rng):
        # P with structurally zero diagonal still yields full KKT diagonal.
        p = CSRMatrix.from_dense([[0.0, 1.0], [1.0, 0.0]])
        a = CSRMatrix.from_dense([[1.0, 0.0]])
        kkt = assemble_kkt_upper(p, a, 1e-6, np.array([0.5]))
        assert np.all(kkt.to_dense().diagonal() != 0.0)

    def test_shape_errors(self, rng):
        p = CSRMatrix.from_dense(random_spd_dense(rng, 3, 0.5))
        a = CSRMatrix.from_dense(random_dense(rng, 2, 4, 0.5))
        with pytest.raises(ShapeError):
            assemble_kkt_upper(p, a, 1e-6, np.ones(2))
        a_ok = CSRMatrix.from_dense(random_dense(rng, 2, 3, 0.5))
        with pytest.raises(ShapeError):
            assemble_kkt_upper(p, a_ok, 1e-6, np.ones(3))


class TestReducedKKTOperator:
    def setup_operator(self, rng, n=6, m=4, rho=0.4):
        p = random_spd_dense(rng, n, 0.4)
        a = random_dense(rng, m, n, 0.5)
        op = ReducedKKTOperator(CSRMatrix.from_dense(p),
                                CSRMatrix.from_dense(a), 1e-6,
                                np.full(m, rho))
        k_dense = p + 1e-6 * np.eye(n) + rho * a.T @ a
        return op, k_dense, p, a

    def test_matvec_matches_dense(self, rng):
        op, k_dense, _, _ = self.setup_operator(rng)
        x = rng.standard_normal(6)
        np.testing.assert_allclose(op.matvec(x), k_dense @ x, atol=1e-10)

    def test_diagonal_matches_dense(self, rng):
        op, k_dense, _, _ = self.setup_operator(rng)
        np.testing.assert_allclose(op.diagonal(), np.diag(k_dense),
                                   atol=1e-12)

    def test_vector_rho_matvec(self, rng):
        n, m = 5, 3
        p = random_spd_dense(rng, n, 0.4)
        a = random_dense(rng, m, n, 0.6)
        rho_vec = np.array([0.1, 2.0, 30.0])
        op = ReducedKKTOperator(CSRMatrix.from_dense(p),
                                CSRMatrix.from_dense(a), 1e-6, rho_vec)
        k_dense = p + 1e-6 * np.eye(n) + a.T @ np.diag(rho_vec) @ a
        x = rng.standard_normal(n)
        np.testing.assert_allclose(op.matvec(x), k_dense @ x, atol=1e-10)
        np.testing.assert_allclose(op.diagonal(), np.diag(k_dense),
                                   atol=1e-10)

    def test_update_rho(self, rng):
        op, _, p, a = self.setup_operator(rng)
        op.update_rho(np.full(4, 2.0))
        k_new = p + 1e-6 * np.eye(6) + 2.0 * a.T @ a
        x = rng.standard_normal(6)
        np.testing.assert_allclose(op.matvec(x), k_new @ x, atol=1e-10)

    def test_update_rho_scalar_broadcast(self, rng):
        op, _, p, a = self.setup_operator(rng)
        op.update_rho(3.0)
        np.testing.assert_allclose(op.rho_vec, 3.0)

    def test_rejects_nonpositive_rho(self, rng):
        op, _, _, _ = self.setup_operator(rng)
        with pytest.raises(ShapeError):
            op.update_rho(np.zeros(4))

    def test_rhs(self, rng):
        op, _, p, a = self.setup_operator(rng, rho=0.4)
        n, m = 6, 4
        x, z, y = (rng.standard_normal(n), rng.standard_normal(m),
                   rng.standard_normal(m))
        q = rng.standard_normal(n)
        expected = 1e-6 * x - q + a.T @ (0.4 * z - y)
        np.testing.assert_allclose(op.rhs(x, q, z, y), expected, atol=1e-10)

    def test_empty_constraints(self, rng):
        # m = 0: operator degenerates to P + sigma I.
        n = 4
        p = random_spd_dense(rng, n, 0.5)
        op = ReducedKKTOperator(CSRMatrix.from_dense(p),
                                CSRMatrix.zeros((0, n)), 1e-6, np.zeros(0))
        x = rng.standard_normal(n)
        np.testing.assert_allclose(op.matvec(x),
                                   (p + 1e-6 * np.eye(n)) @ x, atol=1e-12)
