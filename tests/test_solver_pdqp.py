"""The PDQP algorithm: reference solver, accelerator, selection, serving.

Covers the second algorithm end to end: the restarted accelerated
PDHG reference (`repro.solver.pdqp`), the common algorithm registry
(`repro.solver.algorithms`), the structural auto-selection policy
(`repro.solver.select`), the ISA lowering + accelerator wrapper
(`repro.hw.pdqp`), and the serving/fleet integration that picks an
algorithm per structure.
"""

import numpy as np
import pytest

from repro.faults import EVERY_ATTEMPT, Fault, FaultInjector, solution_ok
from repro.customization import customize_problem
from repro.hw import PDHG_LOOP, compile_pdqp_program
from repro.hw.accelerator import RSQPAccelerator
from repro.hw.pdqp import PDQPAccelerator
from repro.problems import FAMILIES, generate
from repro.qp import QProblem
from repro.solver import (OSQPSettings, PDQPSettings, PDQPSolver,
                          SolverStatus, available_algorithms,
                          choose_algorithm, get_algorithm, solve,
                          solve_pdqp, solve_with, structure_features)
from repro.sparse import CSRMatrix

from helpers import random_dense, random_spd_dense


def small_qp(seed=0, n=6, m=8):
    rng = np.random.default_rng(seed)
    p = random_spd_dense(rng, n, 0.5)
    a = random_dense(rng, m, n, 0.7)
    x0 = rng.standard_normal(n)
    slack = np.abs(rng.standard_normal(m)) + 0.1
    return QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a), l=a @ x0 - slack,
                    u=a @ x0 + slack)


# ---------------------------------------------------------------------------
# settings
# ---------------------------------------------------------------------------
class TestSettings:
    def test_defaults_valid(self):
        s = PDQPSettings()
        assert s.max_iter == 20000
        assert s.restart == "adaptive"

    @pytest.mark.parametrize("kwargs", [
        {"omega": 0.0}, {"omega": -1.0}, {"tau_scale": 0.0},
        {"tau_scale": 1.5}, {"restart": "sometimes"},
        {"restart_interval": 0}, {"restart_beta": 0.0},
        {"restart_beta": 1.0}, {"omega_tolerance": 0.5},
        {"power_iterations": 0}, {"eps_abs": -1.0}, {"max_iter": 0},
        {"check_termination": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PDQPSettings(**kwargs)

    def test_osqp_settings_share_base_validation(self):
        with pytest.raises(ValueError):
            OSQPSettings(eps_rel=-1.0)
        with pytest.raises(ValueError):
            OSQPSettings(alpha=2.5)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_both_algorithms_registered(self):
        assert available_algorithms() == ("admm", "pdqp")

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="admm"):
            get_algorithm("simplex")

    def test_solve_with_dispatches(self):
        prob = small_qp()
        r_admm = solve_with("admm", prob)
        r_pdqp = solve_with("pdqp", prob)
        assert r_admm.status.is_optimal
        assert r_pdqp.status.is_optimal
        np.testing.assert_allclose(r_admm.x, r_pdqp.x, atol=5e-2)

    def test_coerce_settings_carries_shared_fields(self):
        src = OSQPSettings(eps_abs=1e-5, eps_rel=1e-6, max_iter=123)
        out = get_algorithm("pdqp").coerce_settings(src)
        assert isinstance(out, PDQPSettings)
        assert out.eps_abs == 1e-5 and out.eps_rel == 1e-6
        assert out.max_iter == 123  # explicit budgets are honored

    def test_coerce_settings_drops_default_max_iter(self):
        out = get_algorithm("pdqp").coerce_settings(OSQPSettings())
        # The ADMM default budget would starve first-order PDHG;
        # defaults map to defaults.
        assert out.max_iter == PDQPSettings().max_iter


# ---------------------------------------------------------------------------
# reference solver
# ---------------------------------------------------------------------------
class TestReference:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_solves_every_family(self, family):
        prob = generate(family, 16, seed=0)
        res = solve_pdqp(prob)
        assert res.status.is_optimal, (family, res.status)
        assert solution_ok(prob, res.x, res.y, res.z,
                           eps_abs=1e-3, eps_rel=1e-3)

    def test_matches_admm_reference(self):
        prob = small_qp(seed=4)
        tight = PDQPSettings(eps_abs=1e-8, eps_rel=1e-8, max_iter=50000)
        ours = solve_pdqp(prob, tight)
        ref = solve(prob, OSQPSettings(eps_abs=1e-8, eps_rel=1e-8,
                                       max_iter=30000, polish=True))
        assert ours.status.is_optimal and ref.status.is_optimal
        np.testing.assert_allclose(ours.x, ref.x, atol=1e-5)

    def test_restarts_and_history_recorded(self):
        prob = small_qp(seed=1)
        res = solve_pdqp(prob, PDQPSettings(
            restart="fixed", restart_interval=50, record_history=True,
            eps_abs=1e-6, eps_rel=1e-6, max_iter=5000))
        assert res.info.restarts > 0
        assert res.info.history
        assert res.iterations == res.info.iterations
        assert res.termination_reason == res.status.reason

    def test_restart_none_never_restarts(self):
        prob = small_qp(seed=1)
        res = solve_pdqp(prob, PDQPSettings(restart="none", max_iter=2000))
        assert res.info.restarts == 0

    def test_warm_start_helps(self):
        prob = small_qp(seed=2)
        cold = solve_pdqp(prob)
        solver = PDQPSolver(prob, PDQPSettings())
        solver.warm_start(x=cold.x, y=cold.y)
        warm = solver.solve()
        assert warm.info.iterations <= cold.info.iterations

    def test_max_iter_reported(self):
        prob = small_qp(seed=0)
        res = solve_pdqp(prob, PDQPSettings(max_iter=3, eps_abs=1e-12,
                                            eps_rel=1e-12,
                                            check_termination=1))
        assert res.status in (SolverStatus.MAX_ITER_REACHED,
                              SolverStatus.SOLVED_INACCURATE)
        assert res.termination_reason in ("max_iterations",
                                          "converged_inaccurate")


# ---------------------------------------------------------------------------
# auto-selection
# ---------------------------------------------------------------------------
class TestSelection:
    def test_small_problem_stays_on_admm(self):
        assert choose_algorithm(generate("lasso", 10)) == "admm"

    def test_large_sparse_structure_picks_pdqp(self):
        prob = generate("huber", 60)  # n + m ~ 780, sparse P
        assert choose_algorithm(prob) == "pdqp"

    def test_ill_scaled_diagonal_stays_on_admm(self):
        n = 200
        d = np.logspace(0, 8, n)
        prob = QProblem(P=CSRMatrix.from_dense(np.diag(d)),
                        q=np.ones(n),
                        A=CSRMatrix.from_dense(np.eye(n)),
                        l=-np.ones(n), u=np.ones(n))
        feats = structure_features(prob)
        assert feats.cond_proxy >= 1e6
        assert choose_algorithm(prob) == "admm"

    def test_dense_quadratic_stays_on_admm(self):
        rng = np.random.default_rng(0)
        n, m = 170, 170
        prob = QProblem(P=CSRMatrix.from_dense(random_spd_dense(rng, n, 1.0)),
                        q=rng.standard_normal(n),
                        A=CSRMatrix.from_dense(np.eye(m)),
                        l=-np.ones(m), u=np.ones(m))
        assert structure_features(prob).p_density >= 0.25
        assert choose_algorithm(prob) == "admm"

    def test_override_short_circuits(self):
        prob = generate("lasso", 10)
        assert choose_algorithm(prob, override="pdqp") == "pdqp"
        assert choose_algorithm(prob, override="auto") == "admm"
        with pytest.raises(ValueError):
            choose_algorithm(prob, override="simplex")


# ---------------------------------------------------------------------------
# accelerator
# ---------------------------------------------------------------------------
class TestAccelerator:
    @pytest.mark.parametrize("family,size", [("lasso", 20), ("eqqp", 24),
                                             ("portfolio", 20)])
    def test_converges_and_satisfies_kkt(self, family, size):
        prob = generate(family, size, seed=0)
        acc = PDQPAccelerator(prob)
        res = acc.run()
        assert res.converged
        assert res.algorithm == "pdqp"
        assert res.pcg_iterations == 0
        assert res.status.is_optimal
        assert res.iterations == res.admm_iterations
        assert solution_ok(prob, res.x, res.y, res.z,
                           eps_abs=1e-3, eps_rel=1e-3)

    def test_estimate_cycles_exact(self):
        prob = generate("lasso", 20, seed=0)
        acc = PDQPAccelerator(prob)
        res = acc.run()
        assert acc.estimate_cycles(res.admm_iterations,
                                   restarts=res.restarts) \
            == res.total_cycles

    def test_compiled_program_verifies(self):
        from repro.verify import verify_compiled_program
        prob = generate("eqqp", 16, seed=0)
        acc = PDQPAccelerator(prob)
        report = verify_compiled_program(acc.compiled)
        assert report.ok, report.render()

    def test_lowering_validates_structure(self):
        prob = generate("lasso", 20, seed=0)
        other = generate("eqqp", 16, seed=0)
        compiled = PDQPAccelerator(prob).compiled
        with pytest.raises(ValueError):
            PDQPAccelerator(other, compiled=compiled)

    def test_restarts_charged_and_counted(self):
        prob = generate("control", 6, seed=0)
        acc = PDQPAccelerator(prob, settings=PDQPSettings(
            restart_interval=50))
        res = acc.run()
        assert res.restarts == acc.restarts
        assert acc.estimate_cycles(res.admm_iterations,
                                   restarts=res.restarts) \
            == res.total_cycles

    def test_fault_injection_detected_and_recovered(self):
        prob = generate("control", 6, seed=0)
        injector = FaultInjector([
            Fault(kind="mac-flip", op_index=900, element=3, bit=62)])
        acc = PDQPAccelerator(prob, fault_injector=injector)
        res = acc.run()
        assert res.fault_events
        assert res.converged
        assert solution_ok(prob, res.x, res.y, res.z,
                           eps_abs=1e-3, eps_rel=1e-3)

    def test_program_has_expected_sections(self):
        compiled = compile_pdqp_program(6, 8, max_iter=100)
        assert set(compiled.section_cycles) \
            == {"prologue", "pdhg_body", "epilogue"}
        assert compiled.algorithm == "pdqp"
        assert compiled.body_section == "pdhg_body"
        assert compiled.loop_sections == {PDHG_LOOP: "pdhg_body"}

    def test_admm_result_surface_unchanged(self):
        prob = generate("lasso", 10, seed=0)
        res = RSQPAccelerator(prob).run()
        assert res.algorithm == "admm"
        assert res.iterations == res.admm_iterations
        assert res.termination_reason == res.status.reason


# ---------------------------------------------------------------------------
# serving + fleet integration
# ---------------------------------------------------------------------------
class TestServing:
    def test_pinned_pdqp_service(self):
        from repro.serving import SolverService
        prob = generate("lasso", 16, seed=0)
        with SolverService(mode="serial", workers=1,
                           algorithm="pdqp") as svc:
            res = svc.solve(prob)
            assert res.converged
            assert res.record.algorithm == "pdqp"
            assert res.record.backend == "rsqp"
            counters = svc.metrics_snapshot()["counters"]
            assert counters["serving_algo_selected_pdqp_total"] == 1
            assert counters["serving_algo_selected_total"] == 1

    def test_auto_service_small_uses_admm(self):
        from repro.serving import SolverService
        prob = generate("lasso", 10, seed=0)
        with SolverService(mode="serial", workers=1) as svc:
            res = svc.solve(prob)
            assert res.record.algorithm == "admm"

    def test_algorithm_part_of_cache_key(self):
        from repro.serving import SolverService
        from repro.serving.fingerprint import fingerprint_problem
        prob = generate("lasso", 10, seed=0)
        with SolverService(mode="serial", workers=1) as svc:
            fp = fingerprint_problem(prob, c=16)
            admm_key = svc.cache_key(fp, 16, "admm")
            pdqp_key = svc.cache_key(fp, 16, "pdqp")
            assert admm_key != pdqp_key
            assert pdqp_key.endswith(":pdqp")

    def test_invalid_algorithm_rejected(self):
        from repro.serving import SolverService
        with pytest.raises(ValueError):
            SolverService(mode="serial", algorithm="simplex")

    def test_fleet_race_pins_cycle_winner(self):
        from repro.fleet import FleetService
        prob = generate("lasso", 16, seed=0)
        svc = FleetService(solve_mode="calibrated", algorithm="race",
                           policy="match")
        svc.commission(prob)
        first = svc.solve(prob)
        repeat = svc.solve(prob)
        assert first.converged and repeat.converged
        assert repeat.record.calibrated
        report = svc.fleet_report()
        (winner,) = report["race_winners"].values()
        assert winner in ("admm", "pdqp")
        counters = svc.metrics_snapshot()["counters"]
        assert counters["fleet_race_solves_total"] == 2.0
        assert counters[f"fleet_race_winner_{winner}_total"] == 1.0
        # The race measured both algorithms; the winner must not cost
        # more cycles than the measured loser.
        svc.close()

    def test_fleet_race_requires_calibrated(self):
        from repro.fleet import FleetService
        with pytest.raises(ValueError):
            FleetService(algorithm="race", solve_mode="exact")


# ---------------------------------------------------------------------------
# artifact build + poison healing
# ---------------------------------------------------------------------------
class TestArtifacts:
    def test_pdqp_artifact_roundtrip(self):
        from repro.faults import poison_artifact
        from repro.serving.arch_cache import ArchCache, build_artifact
        from repro.verify import ensure_artifact_verified
        prob = generate("eqqp", 16, seed=0)
        cache = ArchCache(capacity=4)
        artifact = build_artifact(prob, 8, cache, algorithm="pdqp")
        assert artifact.algorithm == "pdqp"
        ensure_artifact_verified(artifact, context="test")
        event = poison_artifact(artifact)
        assert event["section"] == "pdhg_body"
        from repro.exceptions import VerificationError
        with pytest.raises(VerificationError):
            ensure_artifact_verified(artifact, context="test")
