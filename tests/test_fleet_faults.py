"""Fleet under faults: node failures, requeue, circuit breakers,
degraded spill, and the admission-clock guard.

The invariant the suite defends: a node failure never loses a request
— the in-flight and queued work is requeued, and when the fleet cannot
place it the request resolves on the reference spill lane with an
explicit ``degraded``/``attempts`` trail, never a silent drop."""

import json

import pytest

from repro.exceptions import FaultDetectedError
from repro.faults import Fault, FaultPlan
from repro.fleet import (FleetService, LANE_NODE, LANE_SHED, LANE_SPILL,
                         TokenBucket)
from repro.fleet.events import AcceleratorNode
from repro.problems import generate_control, generate_lasso, perturb_numeric
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)


def fleet(**kwargs):
    kwargs.setdefault("settings", SETTINGS)
    kwargs.setdefault("solve_mode", "exact")
    return FleetService(**kwargs)


@pytest.fixture(scope="module")
def ctrl():
    problem = generate_control(4, horizon=5, seed=1)
    problem.name = "ctrl"
    return problem


@pytest.fixture(scope="module")
def lasso():
    problem = generate_lasso(8, seed=2)
    problem.name = "lasso"
    return problem


@pytest.fixture(scope="module")
def service_window(ctrl):
    """(start, service_seconds) of an undisturbed solve of ``ctrl``."""
    with fleet() as flt:
        flt.commission(ctrl)
        record = flt.solve(ctrl, at=0.0).record
    return record.start, record.service_seconds


def counters(flt):
    return flt.metrics.snapshot()["counters"]


class TestNodeFailure:
    def test_fail_during_service_requeues_in_flight_work(
            self, ctrl, service_window):
        start, seconds = service_window
        assert seconds > 0
        plan = FaultPlan(faults=(
            Fault(kind="node-stall", node=0, time=start + seconds / 2,
                  duration=10.0),))
        with fleet(fault_plan=plan) as flt:
            flt.commission(ctrl)
            result = flt.solve(ctrl, at=0.0)
        # The sole node died mid-service: the request is aborted,
        # requeued, finds no online node, and resolves on the spill
        # lane — answered, correct, and with the retry trail visible.
        assert result.converged
        assert result.record.lane == LANE_SPILL
        assert result.record.attempts == 1
        counts = counters(flt)
        assert counts["fleet_node_failures_total"] == 1
        assert counts["fleet_requeues_total"] == 1
        # The stale completion event from the aborted service must be
        # dropped by the epoch guard: exactly one record, no crash.
        assert len(flt.records()) == 1

    def test_recovered_node_serves_again(self, ctrl, service_window):
        start, seconds = service_window
        fail_at = start + seconds / 2
        plan = FaultPlan(faults=(
            Fault(kind="node-stall", node=0, time=fail_at,
                  duration=seconds),))
        with fleet(fault_plan=plan, breaker_reset_seconds=0.0) as flt:
            flt.commission(ctrl)
            first = flt.solve(ctrl, at=0.0)
            second = flt.solve(ctrl, at=fail_at + 10 * seconds + 1.0)
        assert first.converged and second.converged
        assert second.record.lane == LANE_NODE
        counts = counters(flt)
        assert counts["fleet_node_failures_total"] == 1
        assert counts["fleet_node_recoveries_total"] == 1

    def test_fail_while_idle_loses_nothing(self, ctrl):
        plan = FaultPlan(faults=(
            Fault(kind="node-stall", node=0, time=100.0, duration=0.5),))
        with fleet(fault_plan=plan) as flt:
            flt.commission(ctrl)
            result = flt.solve(ctrl, at=0.0)
            flt.drain()
        assert result.record.lane == LANE_NODE
        assert counters(flt)["fleet_node_failures_total"] == 1

    def test_stall_targeting_unknown_node_is_ignored(self, ctrl):
        plan = FaultPlan(faults=(
            Fault(kind="node-stall", node=99, time=0.0, duration=1.0),))
        with fleet(fault_plan=plan) as flt:
            flt.commission(ctrl)
            result = flt.solve(ctrl)
        assert result.record.lane == LANE_NODE
        assert counters(flt).get("fleet_node_failures_total", 0) == 0


class TestCircuitBreaker:
    def test_open_breaker_diverts_even_after_recovery(
            self, ctrl, service_window):
        start, seconds = service_window
        fail_at = start + seconds / 2
        plan = FaultPlan(faults=(
            Fault(kind="node-stall", node=0, time=fail_at,
                  duration=seconds),))
        # Reset window far beyond the test horizon: the breaker stays
        # open although the node itself is healthy again.
        with fleet(fault_plan=plan, breaker_reset_seconds=1e9) as flt:
            flt.commission(ctrl)
            flt.solve(ctrl, at=0.0)
            late = flt.solve(ctrl, at=fail_at + 10 * seconds + 1.0)
        assert late.converged
        assert late.record.lane == LANE_SPILL
        counts = counters(flt)
        assert counts["fleet_breaker_opens_total"] >= 1
        report = flt.fleet_report()
        assert report["nodes"][0]["breaker"] == "open"
        assert report["faults"]["breaker_opens"] >= 1

    def test_solve_failure_reroutes_to_sibling_node(self, ctrl,
                                                    monkeypatch):
        with fleet(breaker_threshold=1) as flt:
            flt.commission(ctrl)
            flt.commission(ctrl)
            real = flt._node_solve

            def defective_node0(request, node):
                if node.node_id == 0:
                    raise FaultDetectedError("node 0 datapath defect")
                return real(request, node)

            monkeypatch.setattr(flt, "_node_solve", defective_node0)
            result = flt.solve(ctrl)
        assert result.converged
        assert result.record.lane == LANE_NODE
        assert result.record.node_id == 1
        assert result.record.attempts == 1
        counts = counters(flt)
        assert counts["fleet_solve_failures_total"] == 1
        assert counts["fleet_breaker_opens_total"] == 1

    def test_exhausted_attempts_degrade_explicitly(self, ctrl,
                                                   monkeypatch):
        with fleet(max_attempts=2) as flt:
            flt.commission(ctrl)
            monkeypatch.setattr(
                flt, "_node_solve",
                lambda request, node: (_ for _ in ()).throw(
                    FaultDetectedError("always broken")))
            result = flt.solve(ctrl)
        assert result.converged                 # reference lane answered
        assert result.record.lane == LANE_SPILL
        assert result.record.degraded
        assert result.record.attempts == 2
        counts = counters(flt)
        assert counts["fleet_degraded_total"] == 1
        assert counts["fleet_solve_failures_total"] == 2

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            fleet(max_attempts=0)


class TestChaosReplay:
    def test_generated_plan_answers_every_request(self, ctrl, lasso):
        def run():
            plan = FaultPlan.generate(11, 16, stalls=2, nodes=2,
                                      horizon=16 / 2000.0, poisons=0)
            with fleet(solve_mode="calibrated", seed=3, policy="match",
                       fault_plan=plan) as flt:
                flt.commission(ctrl)
                flt.commission(lasso)
                stream = [perturb_numeric((ctrl, lasso)[i % 2], seed=i)
                          for i in range(16)]
                ids = flt.replay_open(stream, rate=2000.0, seed=3)
                results = [flt.result(i) for i in ids]
                return flt.fleet_report(), results

        report, results = run()
        assert len(results) == 16
        assert all(r.record.lane in (LANE_NODE, LANE_SPILL, LANE_SHED)
                   for r in results)
        # Nobody vanishes and nobody fails silently: every non-shed
        # request carries a converged answer.
        assert all(r.converged for r in results
                   if r.record.lane != LANE_SHED)
        assert "faults" in report

    def test_report_is_deterministic_under_faults(self, ctrl, lasso):
        def run():
            plan = FaultPlan.generate(11, 12, stalls=1, nodes=2,
                                      horizon=12 / 2000.0, poisons=0)
            with fleet(solve_mode="calibrated", seed=3,
                       fault_plan=plan) as flt:
                flt.commission(ctrl)
                flt.commission(lasso)
                stream = [perturb_numeric((ctrl, lasso)[i % 2], seed=i)
                          for i in range(12)]
                flt.replay_open(stream, rate=2000.0, seed=3)
                return flt.fleet_report()

        a, b = run(), run()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestAdmissionClockGuard:
    def test_backwards_clock_does_not_mint_tokens(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(10.0)
        assert bucket.try_take(10.0)            # burst drained at t=10
        # Clock steps backwards: no refill may occur, and the watermark
        # must not rewind (which would refill the same interval twice).
        assert not bucket.try_take(5.0)
        assert not bucket.try_take(0.0)
        # Real time resumes from the watermark, not from the rewound
        # clock: one simulated second refills exactly one token.
        assert bucket.try_take(11.0)
        assert not bucket.try_take(11.0)

    def test_monotonic_behavior_unchanged(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.1)
        assert bucket.try_take(0.5)


class TestAbortAccounting:
    def test_abort_reverses_service_accounting(self):
        node = AcceleratorNode(0, "c4", commissioned_at=0.0,
                               available_at=0.0)

        class Req:
            request_id = 7

        node.start_service(0.0, Req, 2.0, 0.9)
        assert node.served == 1
        aborted = node.abort_service(1.0)       # dies halfway through
        assert aborted is Req
        assert node.served == 0
        assert node.busy_seconds == pytest.approx(1.0)
        assert node.eta_sum == pytest.approx(0.0)
        assert node.busy_with is None

    def test_abort_when_idle_returns_none(self):
        node = AcceleratorNode(0, "c4", commissioned_at=0.0,
                               available_at=0.0)
        assert node.abort_service(0.0) is None
