"""Cross-stack edge cases: degenerate shapes through every layer."""

import numpy as np
import pytest

from repro.customization import (baseline_customization, customize_problem,
                                 schedule, baseline_architecture, build_cvb)
from repro.encoding import encode_matrix
from repro.hw import RSQPAccelerator
from repro.qp import QProblem
from repro.solver import OSQPSettings, OSQPSolver
from repro.sparse import CSRMatrix, eye

from helpers import random_spd_dense


class TestUnconstrainedProblem:
    """m = 0: no constraint rows anywhere in the stack."""

    def make(self, rng):
        p = random_spd_dense(rng, 3, 0.6)
        return QProblem(P=CSRMatrix.from_dense(p),
                        q=rng.standard_normal(3),
                        A=CSRMatrix.zeros((0, 3)),
                        l=np.zeros(0), u=np.zeros(0))

    def test_customization(self, rng):
        prob = self.make(rng)
        custom = customize_problem(prob, 16)
        assert 0 < custom.eta <= 1
        assert custom.matrices["A"].spmv_cycles == 0

    def test_accelerator_solves(self, rng):
        prob = self.make(rng)
        acc = RSQPAccelerator(prob, settings=OSQPSettings(max_iter=500))
        res = acc.run()
        assert res.converged
        expected = np.linalg.solve(prob.P.to_dense(), -prob.q)
        np.testing.assert_allclose(res.x, expected, atol=1e-2)

    def test_reference_solver(self, rng):
        prob = self.make(rng)
        res = OSQPSolver(prob, OSQPSettings(eps_abs=1e-7,
                                            eps_rel=1e-7)).solve()
        assert res.status.is_optimal


class TestSingleElementProblem:
    def test_one_by_one(self):
        prob = QProblem(P=CSRMatrix.from_dense([[2.0]]), q=[1.0],
                        A=eye(1), l=[-0.1], u=[0.1])
        res = OSQPSolver(prob, OSQPSettings(eps_abs=1e-7,
                                            eps_rel=1e-7)).solve()
        assert res.status.is_optimal
        np.testing.assert_allclose(res.x, [-0.1], atol=1e-4)
        acc = RSQPAccelerator(prob, settings=OSQPSettings(max_iter=500))
        hw = acc.run()
        assert hw.converged
        np.testing.assert_allclose(hw.x, [-0.1], atol=1e-3)


class TestEmptyMatrixEncoding:
    def test_zero_row_matrix_encodes_empty(self):
        enc = encode_matrix(CSRMatrix.zeros((0, 5)), 16)
        assert enc.string == ""
        assert enc.chunks == []
        sched = schedule(enc, baseline_architecture(16))
        assert sched.cycles == 0 and sched.ep == 0
        layout = build_cvb(sched)
        assert layout.depth == 0

    def test_all_zero_matrix(self):
        # Rows exist but hold nothing: one 'a' slot each.
        enc = encode_matrix(CSRMatrix.zeros((4, 5)), 16)
        assert enc.string == "aaaa"
        sched = schedule(enc, baseline_architecture(16))
        assert sched.ep == 4 * 16


class TestDegenerateBounds:
    def test_all_equalities(self, rng):
        n = 4
        p = random_spd_dense(rng, n, 0.5)
        a = rng.standard_normal((2, n))
        x_feas = rng.standard_normal(n)
        b = a @ x_feas
        prob = QProblem(P=CSRMatrix.from_dense(p),
                        q=rng.standard_normal(n),
                        A=CSRMatrix.from_dense(a), l=b, u=b.copy())
        res = OSQPSolver(prob, OSQPSettings(eps_abs=1e-6,
                                            eps_rel=1e-6)).solve()
        assert res.status.is_optimal
        np.testing.assert_allclose(a @ res.x, b, atol=1e-3)

    def test_all_free_rows(self, rng):
        # Constraints present but fully unbounded: effectively m = 0.
        n = 3
        p = random_spd_dense(rng, n, 0.6)
        prob = QProblem(P=CSRMatrix.from_dense(p),
                        q=rng.standard_normal(n), A=eye(n),
                        l=np.full(n, -np.inf), u=np.full(n, np.inf))
        res = OSQPSolver(prob, OSQPSettings(eps_abs=1e-6,
                                            eps_rel=1e-6)).solve()
        assert res.status.is_optimal
        expected = np.linalg.solve(p, -prob.q)
        np.testing.assert_allclose(res.x, expected, atol=1e-3)

    def test_fixed_variable_via_equality(self):
        # x0 pinned by an equality, x1 free to optimize.
        prob = QProblem(P=eye(2), q=np.array([0.0, -2.0]),
                        A=CSRMatrix.from_dense([[1.0, 0.0]]),
                        l=[0.7], u=[0.7])
        res = OSQPSolver(prob, OSQPSettings(eps_abs=1e-7,
                                            eps_rel=1e-7)).solve()
        assert res.status.is_optimal
        np.testing.assert_allclose(res.x, [0.7, 2.0], atol=1e-4)


class TestTinyWidths:
    def test_c_equal_one(self, rng):
        # Degenerate datapath: every row is a $-chunk or an 'a'.
        dense = (rng.random((5, 4)) < 0.5).astype(float)
        mat = CSRMatrix.from_dense(dense)
        enc = encode_matrix(mat, 1)
        sched = schedule(enc, baseline_architecture(1))
        sched.validate()
        assert sched.ep >= 0

    def test_c_two(self, rng):
        dense = (rng.random((6, 6)) < 0.4).astype(float)
        mat = CSRMatrix.from_dense(dense)
        enc = encode_matrix(mat, 2)
        sched = schedule(enc, baseline_architecture(2))
        sched.validate()
        layout = build_cvb(sched)
        layout.validate()
