"""Unit tests for repro.sparse.csc."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.sparse import CSCMatrix, CSRMatrix

from helpers import random_dense


class TestConversions:
    def test_from_dense_roundtrip(self, rng):
        dense = random_dense(rng, 6, 4)
        np.testing.assert_allclose(CSCMatrix.from_dense(dense).to_dense(),
                                   dense)

    def test_csr_csc_roundtrip(self, rng):
        dense = random_dense(rng, 5, 7)
        csr = CSRMatrix.from_dense(dense)
        csc = CSCMatrix.from_csr(csr)
        np.testing.assert_allclose(csc.to_dense(), dense)
        np.testing.assert_allclose(csc.to_csr().to_dense(), dense)

    def test_from_coo(self):
        mat = CSCMatrix.from_coo([0, 1, 0], [1, 0, 1], [1.0, 2.0, 3.0], (2, 2))
        np.testing.assert_allclose(mat.to_dense(),
                                   [[0.0, 4.0], [2.0, 0.0]])

    def test_col_view(self):
        dense = np.array([[1.0, 0.0], [2.0, 3.0]])
        rows, vals = CSCMatrix.from_dense(dense).col(0)
        np.testing.assert_array_equal(rows, [0, 1])
        np.testing.assert_allclose(vals, [1.0, 2.0])

    def test_invalid_construction(self):
        with pytest.raises(ShapeError):
            CSCMatrix((2, 2), [1.0], [0], [0, 2, 1])
        with pytest.raises(ShapeError):
            # row indices out of order in a column
            CSCMatrix((3, 1), [1.0, 2.0], [2, 0], [0, 2])


class TestOps:
    def test_matvec(self, rng):
        dense = random_dense(rng, 8, 5)
        x = rng.standard_normal(5)
        np.testing.assert_allclose(CSCMatrix.from_dense(dense).matvec(x),
                                   dense @ x)

    def test_rmatvec(self, rng):
        dense = random_dense(rng, 8, 5)
        y = rng.standard_normal(8)
        np.testing.assert_allclose(CSCMatrix.from_dense(dense).rmatvec(y),
                                   dense.T @ y)

    def test_matvec_shape_errors(self, rng):
        mat = CSCMatrix.from_dense(random_dense(rng, 3, 4))
        with pytest.raises(ShapeError):
            mat.matvec(np.zeros(3))
        with pytest.raises(ShapeError):
            mat.rmatvec(np.zeros(4))

    def test_diagonal(self, rng):
        dense = random_dense(rng, 6, 6, density=0.9)
        np.testing.assert_allclose(CSCMatrix.from_dense(dense).diagonal(),
                                   np.diag(dense))

    def test_col_nnz(self):
        dense = np.array([[1.0, 0.0], [1.0, 0.0]])
        np.testing.assert_array_equal(
            CSCMatrix.from_dense(dense).col_nnz(), [2, 0])


class TestSymmetricPermute:
    def test_permutation_preserves_symmetric_matrix(self, rng):
        n = 7
        a = random_dense(rng, n, n, 0.5)
        sym = (a + a.T) / 2 + np.eye(n) * 3
        upper = CSCMatrix.from_dense(np.triu(sym))
        perm = rng.permutation(n)
        permuted_upper = upper.symmetric_permute_upper(perm)
        # Reconstruct the full symmetric matrix from its upper triangle.
        pu = permuted_upper.to_dense()
        full = pu + pu.T - np.diag(np.diag(pu))
        np.testing.assert_allclose(full, sym[np.ix_(perm, perm)])

    def test_requires_square(self, rng):
        mat = CSCMatrix.from_dense(random_dense(rng, 2, 3))
        with pytest.raises(ShapeError):
            mat.symmetric_permute_upper([0, 1])
