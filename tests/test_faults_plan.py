"""FaultPlan: generation determinism, addressing, (de)serialization."""

import pytest

from repro.faults import (EVERY_ATTEMPT, FAULT_KINDS, HW_KINDS, Fault,
                          FaultPlan)


class TestFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(kind="gamma-ray")

    def test_rejects_out_of_range_bit(self):
        with pytest.raises(ValueError, match="bit"):
            Fault(kind="mac-flip", bit=64)

    def test_fires_on_first_attempt_only_by_default(self):
        fault = Fault(kind="mac-flip", request=0)
        assert fault.fires_on(0)
        assert not fault.fires_on(1)

    def test_persistent_fires_on_every_attempt(self):
        fault = Fault(kind="hbm-read", request=0, attempt=EVERY_ATTEMPT)
        assert fault.fires_on(0) and fault.fires_on(1) and fault.fires_on(7)


class TestPlanQueries:
    def make_plan(self):
        return FaultPlan(seed=3, faults=(
            Fault(kind="mac-flip", request=0, op_index=2),
            Fault(kind="hbm-read", request=1, attempt=EVERY_ATTEMPT),
            Fault(kind="artifact-poison", request=1),
            Fault(kind="node-stall", node=1, time=0.5, duration=0.1),
            Fault(kind="node-stall", node=0, time=0.2, duration=0.1),
        ))

    def test_len_and_bool(self):
        assert len(self.make_plan()) == 5
        assert self.make_plan()
        assert not FaultPlan()
        assert len(FaultPlan()) == 0

    def test_hw_faults_respect_request_and_attempt(self):
        plan = self.make_plan()
        assert [f.kind for f in plan.hw_faults_for(0, 0)] == ["mac-flip"]
        assert plan.hw_faults_for(0, 1) == []          # transient cleared
        assert [f.kind for f in plan.hw_faults_for(1, 4)] == ["hbm-read"]

    def test_injector_is_none_when_nothing_targets_the_attempt(self):
        plan = self.make_plan()
        assert plan.injector_for(2, 0) is None          # untargeted request
        assert plan.injector_for(0, 1) is None          # retried clean
        assert plan.injector_for(0, 0) is not None

    def test_stalls_sorted_by_time(self):
        stalls = self.make_plan().stalls()
        assert [s.node for s in stalls] == [0, 1]
        assert stalls[0].time < stalls[1].time

    def test_poisons_by_request(self):
        plan = self.make_plan()
        assert len(plan.poisons_for(1)) == 1
        assert plan.poisons_for(0) == []

    def test_count_by_kind(self):
        counts = self.make_plan().count_by_kind()
        assert counts == {"mac-flip": 1, "hbm-read": 1,
                          "artifact-poison": 1, "node-stall": 2}


class TestGenerate:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(7, 50)
        b = FaultPlan.generate(7, 50)
        assert a == b

    def test_different_seed_different_plan(self):
        assert FaultPlan.generate(7, 50) != FaultPlan.generate(8, 50)

    def test_generated_kinds_are_valid(self):
        plan = FaultPlan.generate(0, 100, poisons=3, stalls=3, nodes=4)
        assert plan
        for fault in plan.faults:
            assert fault.kind in FAULT_KINDS
            if fault.kind in HW_KINDS:
                assert 0 <= fault.request < 100
                assert 0 <= fault.bit <= 63

    def test_zero_rates_give_only_scheduled_faults(self):
        plan = FaultPlan.generate(0, 100, mac_rate=0, hbm_rate=0,
                                  cvb_rate=0, poisons=1, stalls=2)
        counts = plan.count_by_kind()
        assert counts == {"artifact-poison": 1, "node-stall": 2}

    def test_round_trip_dict(self):
        plan = FaultPlan.generate(5, 30, poisons=2, stalls=2)
        clone = FaultPlan.from_dict(plan.as_dict())
        assert clone == plan


class TestProcessVocabulary:
    def test_process_kinds_are_registered(self):
        from repro.faults import PROCESS_KINDS
        assert PROCESS_KINDS == ("worker-crash", "worker-stall",
                                 "shm-corrupt")
        assert set(PROCESS_KINDS) <= set(FAULT_KINDS)
        assert not set(PROCESS_KINDS) & set(HW_KINDS)

    def test_process_faults_for_respects_transience(self):
        plan = FaultPlan(seed=0, faults=(
            Fault(kind="worker-crash", request=2),
            Fault(kind="worker-stall", request=5, duration=0.5),
            Fault(kind="worker-stall", request=6, duration=0.5,
                  attempt=EVERY_ATTEMPT),
        ))
        assert [f.kind for f in plan.process_faults_for(2, 0)] == \
            ["worker-crash"]
        assert plan.process_faults_for(2, 1) == []   # requeue runs clean
        assert plan.process_faults_for(5, 0)[0].duration == 0.5
        assert plan.process_faults_for(6, 3) != []   # persistent defect

    def test_shm_corrupts_for(self):
        plan = FaultPlan(seed=0, faults=(
            Fault(kind="shm-corrupt", request=1),
            Fault(kind="worker-crash", request=1),
        ))
        assert [f.kind for f in plan.shm_corrupts_for(1)] == ["shm-corrupt"]
        assert plan.shm_corrupts_for(0) == []

    def test_generated_process_faults_hit_distinct_requests(self):
        plan = FaultPlan.generate(9, 20, mac_rate=0, hbm_rate=0,
                                  cvb_rate=0, poisons=0, stalls=0,
                                  worker_crashes=3, worker_stalls=3,
                                  shm_corrupts=3,
                                  worker_stall_seconds=0.25)
        counts = plan.count_by_kind()
        assert counts == {"worker-crash": 3, "worker-stall": 3,
                          "shm-corrupt": 3}
        targeted = [f.request for f in plan.faults]
        assert len(targeted) == len(set(targeted))  # never doubled up
        for fault in plan.faults:
            if fault.kind == "worker-stall":
                assert fault.duration == 0.25
            assert 0 <= fault.request < 20

    def test_counts_clamped_to_request_budget(self):
        plan = FaultPlan.generate(0, 4, mac_rate=0, hbm_rate=0,
                                  cvb_rate=0, poisons=0, stalls=0,
                                  worker_crashes=3, worker_stalls=3,
                                  shm_corrupts=3)
        # Only 4 distinct requests exist; the draw never overflows.
        assert len(plan) == 4
        targeted = [f.request for f in plan.faults]
        assert len(targeted) == len(set(targeted))

    def test_historical_plans_are_bit_identical(self):
        # Adding the process vocabulary must not perturb plans drawn
        # with the historical arguments: the old stream is consumed
        # first, process faults are appended after.
        legacy = FaultPlan.generate(7, 50)
        extended = FaultPlan.generate(7, 50, worker_crashes=2,
                                      worker_stalls=1, shm_corrupts=1)
        assert legacy == FaultPlan.generate(7, 50)
        assert extended.faults[:len(legacy.faults)] == legacy.faults
        extras = extended.faults[len(legacy.faults):]
        assert {f.kind for f in extras} <= {"worker-crash", "worker-stall",
                                            "shm-corrupt"}
        assert len(extras) == 4
