"""Architecture cache: LRU semantics, counters, disk round-trip."""

import json
import threading

import pytest

from repro.customization import customize_problem
from repro.hw import estimate_resources, fmax_mhz, fpga_power_watts
from repro.hw.accelerator import compile_for_customization
from repro.problems import generate_lasso
from repro.serving import ArchArtifact, ArchCache, fingerprint_problem


def make_artifact(n=6, seed=0, c=16):
    """A real (small) artifact: full customize + compile flow."""
    problem = generate_lasso(n, seed=seed)
    custom = customize_problem(problem, c)
    compiled = compile_for_customization(custom, problem.n, problem.m,
                                         max_admm_iter=4000,
                                         max_pcg_iter=500)
    arch = custom.architecture
    return ArchArtifact(
        fingerprint=fingerprint_problem(problem, c=c), c=arch.c,
        customization=custom.detach(), compiled=compiled,
        max_pcg_iter=500, fmax_mhz=fmax_mhz(arch),
        power_watts=fpga_power_watts(arch),
        resources=estimate_resources(arch),
        customize_seconds=0.25, compile_seconds=0.01)


@pytest.fixture(scope="module")
def artifact():
    return make_artifact()


class TestLookup:
    def test_miss_then_hit(self, artifact):
        cache = ArchCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", artifact)
        assert cache.get("k") is artifact
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_peek_does_not_count(self, artifact):
        cache = ArchCache(capacity=4)
        cache.put("k", artifact)
        assert cache.peek("k") is artifact
        assert cache.peek("absent") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_contains_and_len(self, artifact):
        cache = ArchCache(capacity=4)
        cache.put("a", artifact)
        cache.put("b", artifact)
        assert "a" in cache and "c" not in cache
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ArchCache(capacity=0)


class TestEviction:
    def test_lru_order(self, artifact):
        cache = ArchCache(capacity=2)
        cache.put("a", artifact)
        cache.put("b", artifact)
        cache.get("a")           # touch: b is now least recent
        cache.put("c", artifact)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_spec_survives_eviction(self, artifact):
        cache = ArchCache(capacity=1)
        cache.put("a", artifact)
        cache.put("b", artifact)  # evicts a
        assert "a" not in cache
        spec = cache.persisted_spec("a")
        assert spec is not None
        assert spec.architecture == artifact.architecture_string
        assert cache.stats().persisted == 2


class TestGetOrBuild:
    def test_builds_once_then_hits(self, artifact):
        cache = ArchCache(capacity=4)
        calls = []

        def builder():
            calls.append(1)
            return artifact

        first, hit1 = cache.get_or_build("k", builder)
        second, hit2 = cache.get_or_build("k", builder)
        assert first is artifact and second is artifact
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1

    def test_concurrent_misses_build_once(self, artifact):
        cache = ArchCache(capacity=4)
        calls = []
        started = threading.Barrier(4)

        def builder():
            calls.append(1)
            return artifact

        results = []

        def worker():
            started.wait()
            results.append(cache.get_or_build("k", builder))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(art is artifact for art, _ in results)
        # Racing waiters paid cold-path latency: at most one may have
        # landed after the put and counted as a fast-path hit.
        assert sum(1 for _, was_hit in results if not was_hit) >= 1


class TestPersistence:
    def test_round_trip(self, tmp_path, artifact):
        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.put("k2", artifact)
        saved = cache.save()
        assert saved == path and path.exists()

        fresh = ArchCache(capacity=4, path=path)  # auto-loads
        assert len(fresh) == 0                    # artifacts not persisted
        spec = fresh.persisted_spec("k1")
        assert spec is not None
        assert spec.architecture == artifact.architecture_string
        assert spec.c == artifact.c
        assert spec.max_pcg_iter == artifact.max_pcg_iter
        assert fresh.stats().persisted == 2

    def test_save_requires_path(self, artifact):
        cache = ArchCache(capacity=4)
        cache.put("k", artifact)
        with pytest.raises(ValueError):
            cache.save()

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            ArchCache(capacity=4).load(path)

    def test_file_is_valid_json_with_version(self, tmp_path, artifact):
        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4)
        cache.put("k", artifact)
        cache.save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        (entry,) = payload["entries"]
        assert entry["key"] == "k"
        assert entry["architecture"] == artifact.architecture_string

    def test_disk_hit_counter(self, artifact):
        cache = ArchCache(capacity=4)
        cache.note_disk_hit()
        assert cache.stats().disk_hits == 1

    def test_bit_flipped_file_triggers_rebuild_not_crash(
            self, tmp_path, artifact, caplog):
        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.save()
        # Flip one bit in the middle of the file: disk rot.
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        path.write_bytes(bytes(blob))
        with caplog.at_level("WARNING", logger="repro.serving.arch_cache"):
            fresh = ArchCache(capacity=4, path=path)   # must not raise
        # Either the flip broke the JSON (nothing loads, warning
        # logged) or it landed inside a string (the entry still
        # parses); in both cases the service stays up and structures
        # rebuild through the cold path.
        assert fresh.stats().persisted in (0, 1)
        assert len(fresh) == 0

    def test_truncated_file_loads_nothing_and_warns(
            self, tmp_path, artifact, caplog):
        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.save()
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with caplog.at_level("WARNING", logger="repro.serving.arch_cache"):
            fresh = ArchCache(capacity=4, path=path)
        assert fresh.stats().persisted == 0
        assert fresh.load(path) == 0
        assert any("corrupt" in r.message for r in caplog.records)

    def test_non_object_payload_loads_nothing(self, tmp_path):
        path = tmp_path / "arch.json"
        path.write_text(json.dumps(["not", "a", "dict"]))
        assert ArchCache(capacity=4).load(path) == 0

    def test_malformed_entry_is_skipped_not_fatal(self, tmp_path,
                                                  artifact):
        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.save()
        payload = json.loads(path.read_text())
        payload["entries"].append({"key": "k2", "bogus_field": 1})
        path.write_text(json.dumps(payload))
        fresh = ArchCache(capacity=4, path=path)
        assert fresh.stats().persisted == 1        # good entry survives
        assert fresh.persisted_spec("k1") is not None


class TestArtifact:
    def test_detached_customization(self, artifact):
        assert artifact.customization.problem is None
        # "c{structure set}" format, round-trippable by parse_architecture.
        assert artifact.architecture_string.startswith(f"{artifact.c}{{")

    def test_build_seconds(self, artifact):
        assert artifact.build_seconds == pytest.approx(
            artifact.customize_seconds + artifact.compile_seconds)


class TestAtomicSave:
    """A process killed at any instant mid-save must leave either the
    old complete file or the new complete file — never a torn one."""

    def test_no_temporary_droppings_after_save(self, tmp_path, artifact):
        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.save()
        assert [p.name for p in tmp_path.iterdir()] == ["arch.json"]

    def test_kill_during_write_preserves_previous_file(
            self, tmp_path, artifact, monkeypatch):
        import os

        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.save()
        before = path.read_bytes()

        # Simulate SIGKILL landing between the payload write and the
        # rename: fsync "never returns". The target must be untouched
        # and the temp file must not linger.
        cache.put("k2", artifact)
        real_fsync = os.fsync

        def dying_fsync(fd):
            real_fsync(fd)
            raise KeyboardInterrupt("killed mid-save")

        monkeypatch.setattr(os, "fsync", dying_fsync)
        with pytest.raises(KeyboardInterrupt):
            cache.save()
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["arch.json"]
        # The survivor still loads cleanly.
        assert ArchCache(capacity=4, path=path).stats().persisted == 1

    def test_kill_during_rename_never_tears_the_target(
            self, tmp_path, artifact, monkeypatch):
        import os

        path = tmp_path / "arch.json"
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.save()
        before = path.read_bytes()

        cache.put("k2", artifact)
        monkeypatch.setattr(
            os, "replace",
            lambda *a, **kw: (_ for _ in ()).throw(
                KeyboardInterrupt("killed at rename")))
        with pytest.raises(KeyboardInterrupt):
            cache.save()
        monkeypatch.undo()
        # os.replace is atomic at the VFS layer: either it happened or
        # it did not. Our simulated kill happened before -> old bytes.
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["arch.json"]

    def test_completed_save_replaces_wholesale(self, tmp_path, artifact):
        path = tmp_path / "arch.json"
        path.write_text("garbage from a previous torn era")
        cache = ArchCache(capacity=4, path=path)
        cache.put("k1", artifact)
        cache.save()
        assert json.loads(path.read_text())["version"] == 1
        assert ArchCache(capacity=4, path=path).stats().persisted == 1
