"""Tests for the CPU/GPU baseline models and the device catalog."""

import numpy as np
import pytest

from repro.baselines import (CPUModel, GPUModel, I7_CPU, RTX3070_GPU,
                             SolveWorkload, TABLE2, U50_FPGA,
                             cpu_solve_seconds, gpu_power_watts,
                             gpu_solve_seconds, workload_from_result)
from repro.problems import generate_svm
from repro.solver import OSQPSettings, solve


def make_workload(nnz=10_000, n=500, m=800, admm=100, pcg=500):
    return SolveWorkload(n=n, m=m, nnz_spmv=nnz, admm_iterations=admm,
                         pcg_iterations=pcg)


class TestDeviceCatalog:
    def test_table2_rows(self):
        assert len(TABLE2) == 3
        assert U50_FPGA.tdp_watts == 75.0
        assert I7_CPU.peak_teraflops == 0.5
        assert RTX3070_GPU.lithography_nm == 8

    def test_gpu_has_highest_peak(self):
        assert RTX3070_GPU.peak_teraflops > I7_CPU.peak_teraflops \
            > U50_FPGA.peak_teraflops


class TestWorkload:
    def test_from_result(self):
        prob = generate_svm(10, seed=0)
        res = solve(prob, OSQPSettings(max_iter=2000))
        wl = workload_from_result(prob, res)
        assert wl.n == prob.n and wl.m == prob.m
        assert wl.nnz_spmv == prob.P.nnz + 2 * prob.A.nnz
        assert wl.admm_iterations == res.info.iterations
        assert wl.pcg_iterations == res.info.pcg_iterations

    def test_call_counts_scale_with_iterations(self):
        small = make_workload(admm=10, pcg=50)
        big = make_workload(admm=20, pcg=100)
        assert big.total_spmv_calls == 2 * small.total_spmv_calls
        assert big.total_vector_calls == 2 * small.total_vector_calls

    def test_problem_bytes_positive(self):
        assert make_workload().problem_bytes > 0


class TestCPUModel:
    def test_time_grows_with_nnz(self):
        small = cpu_solve_seconds(make_workload(nnz=1_000))
        big = cpu_solve_seconds(make_workload(nnz=1_000_000))
        assert big > small

    def test_time_grows_with_iterations(self):
        few = cpu_solve_seconds(make_workload(admm=10, pcg=50))
        many = cpu_solve_seconds(make_workload(admm=100, pcg=500))
        assert many > few

    def test_kkt_fraction_dominates(self):
        # Figure 8: PCG takes > 90 % of the CPU solver time for typical
        # PCG-heavy workloads.
        model = CPUModel()
        wl = make_workload(nnz=50_000, admm=100, pcg=1500)
        frac = model.kkt_solve_seconds(wl) / model.solve_seconds(wl)
        assert frac > 0.85

    def test_setup_floor(self):
        wl = make_workload(nnz=10, n=2, m=2, admm=1, pcg=1)
        assert cpu_solve_seconds(wl) >= CPUModel().setup_seconds


class TestGPUModel:
    def test_gpu_loses_small_wins_big(self):
        # cuOSQP finding: CPU faster below ~1e5 nnz, GPU faster above.
        small = make_workload(nnz=3_000, n=200, m=300, admm=100, pcg=400)
        big = make_workload(nnz=3_000_000, n=80_000, m=120_000,
                            admm=100, pcg=400)
        assert gpu_solve_seconds(small) > cpu_solve_seconds(small)
        assert gpu_solve_seconds(big) < cpu_solve_seconds(big)

    def test_power_range_matches_paper(self):
        # Paper: 44 W to 126 W observed across the benchmark.
        tiny = gpu_power_watts(make_workload(nnz=100))
        huge = gpu_power_watts(make_workload(nnz=10_000_000))
        assert 44.0 <= tiny < 60.0
        assert 100.0 < huge <= 126.0

    def test_power_monotone_in_size(self):
        watts = [gpu_power_watts(make_workload(nnz=k))
                 for k in (1_000, 50_000, 1_000_000)]
        assert watts == sorted(watts)

    def test_launch_overhead_floor(self):
        wl = make_workload(nnz=10, n=2, m=2, admm=1, pcg=1)
        model = GPUModel()
        floor = (wl.total_spmv_calls + wl.total_vector_calls) \
            * model.launch_overhead
        assert gpu_solve_seconds(wl) >= floor
