"""Crash-tolerant sharded serving, end to end over real worker
processes: routing and lockstep batching, deterministic
SIGKILL-mid-solve recovery, shm corruption detection + rebuild,
cooperative stall recovery, asyncio front door, and leak-free drain
(no orphan segments, no zombie children)."""

import asyncio
import multiprocessing
import os
import pathlib
import time

import pytest

from repro.faults import Fault, FaultPlan
from repro.problems import generate_lasso, generate_svm, perturb_numeric
from repro.serving import ShardedSolverService
from repro.serving.sharded import TIER_DEGRADED
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3, max_iter=4000)

#: Constructor defaults tuned for test latency: fast heartbeats, fast
#: restarts. Semantics under test are identical to production values.
FAST = dict(settings=SETTINGS, heartbeat_interval=0.02,
            soft_timeout=0.5, hard_timeout=3.0,
            restart_backoff_base=0.02, restart_backoff_max=0.1)


def _workload(repeats=3, seed=0):
    """``2 * repeats`` problems across two structures, interleaved."""
    svm = generate_svm(10, seed=seed)
    lasso = generate_lasso(8, seed=seed)
    problems = []
    for rep in range(repeats):
        for template in (svm, lasso):
            problems.append(template if rep == 0 else
                            perturb_numeric(template, seed=seed + rep))
    return problems


def _assert_clean_teardown(service, namespace):
    """After close: no mp children, no zombies, nothing in /dev/shm."""
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and \
            time.monotonic() < deadline:
        time.sleep(0.02)
    assert multiprocessing.active_children() == []
    # A zombie child would be reaped (pid > 0) right here; pid == 0
    # means every remaining child (e.g. the resource tracker) is live.
    try:
        pid, _status = os.waitpid(-1, os.WNOHANG)
        assert pid == 0
    except ChildProcessError:
        pass  # no children at all — also clean
    assert service.store.segment_names() == []
    shm_dir = pathlib.Path("/dev/shm")
    if shm_dir.is_dir():
        leaked = [p.name for p in shm_dir.iterdir()
                  if p.name.lstrip("/").startswith(namespace)]
        assert leaked == []


class TestCleanPath:
    def test_solve_batch_round_trip_and_drain(self):
        problems = _workload(repeats=3)
        service = ShardedSolverService(shards=2, **FAST)
        namespace = service.store.namespace
        try:
            results = service.solve_batch(problems, timeout=120.0)
            assert all(r.converged for r in results)
            assert {r.backend for r in results} == {"rsqp"}
            for problem, result in zip(problems, results):
                assert problem.primal_residual(result.x) < 1e-2
            # Two structures -> two published segments, zero rebuilds.
            store = service.stats()["store"]
            assert store["publishes"] == 2
            assert store["quarantines"] == 0
            assert service.stats()["supervisor"]["restarts"] == [0, 0]
            # raw backend payloads never cross the process boundary.
            assert all(r.raw is None for r in results)
        finally:
            service.close(timeout=60.0)
        _assert_clean_teardown(service, namespace)

    def test_same_structure_requests_co_batch(self):
        # One structure, many numeric variants, generous linger: the
        # stream coalesces into lockstep batches wider than 1.
        svm = generate_svm(10, seed=0)
        problems = [svm] + [perturb_numeric(svm, seed=i)
                            for i in range(1, 6)]
        with ShardedSolverService(shards=1, max_batch=4,
                                  max_linger=0.2, **FAST) as service:
            results = service.solve_batch(problems, timeout=120.0)
            assert all(r.converged for r in results)
            assert max(r.record.batch_width for r in results) > 1

    def test_mixed_fingerprints_never_co_batch(self):
        # Interleaved structures under a linger long enough to batch
        # everything: each batch still holds exactly one fingerprint.
        problems = _workload(repeats=3)
        with ShardedSolverService(shards=2, max_batch=8,
                                  max_linger=0.2, **FAST) as service:
            results = service.solve_batch(problems, timeout=120.0)
            assert all(r.converged for r in results)
            # Group by fingerprint: within one batch every member
            # shares the record's fingerprint key, so a mixed batch
            # would show two keys at one (shard, width>1) shipment.
            widths = {}
            for result in results:
                widths.setdefault(result.record.fingerprint_key,
                                  []).append(result.record.batch_width)
            assert len(widths) == 2  # both structures served
            # Each structure was submitted 3x; no batch can be wider.
            assert all(w <= 3 for ws in widths.values() for w in ws)

    def test_submit_after_close_raises(self):
        service = ShardedSolverService(shards=1, **FAST)
        service.close(timeout=60.0)
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(generate_svm(10, seed=0))
        service.close(timeout=60.0)  # idempotent

    def test_unknown_request_id(self):
        with ShardedSolverService(shards=1, **FAST) as service:
            with pytest.raises(KeyError):
                service.result(999)


class TestAsyncFrontDoor:
    def test_solve_async_gather(self):
        problems = _workload(repeats=2)

        async def run(service):
            return await asyncio.gather(
                *(service.solve_async(p) for p in problems))

        with ShardedSolverService(shards=2, **FAST) as service:
            results = asyncio.run(run(service))
            assert all(r.converged for r in results)
            assert len(results) == len(problems)


class TestCrashRecovery:
    def test_sigkill_mid_solve_restarts_and_completes(self):
        # Deterministic: request 2 carries a worker-crash directive —
        # its worker SIGKILLs itself mid-batch. The supervisor must
        # detect, restart within the backoff budget, and every
        # in-flight request of the dead incarnation must complete
        # (retried on the accelerator or explicitly degraded) with its
        # KKT residuals re-checked. Nothing is silently lost.
        plan = FaultPlan(seed=1, faults=(
            Fault(kind="worker-crash", request=2),))
        problems = _workload(repeats=3)
        service = ShardedSolverService(shards=2, fault_plan=plan, **FAST)
        namespace = service.store.namespace
        try:
            t0 = time.monotonic()
            results = service.solve_batch(problems, timeout=120.0)
            elapsed = time.monotonic() - t0
            # Availability: every request answered.
            assert len(results) == len(problems)
            for problem, result in zip(problems, results):
                assert result.converged
                assert problem.primal_residual(result.x) < 1e-2
            # The victim (and any co-batched bystanders) retried.
            assert results[2].record.retries >= 1
            assert sum(r.record.retries for r in results) >= 1
            stats = service.stats()
            assert sum(stats["supervisor"]["restarts"]) >= 1
            # Restarted within the backoff budget, not the deadline's.
            assert elapsed < 60.0
            counters = service.metrics_snapshot()["counters"]
            assert sum(v for k, v in counters.items()
                       if k.startswith("serving_shard_restarts_total")) >= 1
            assert sum(v for k, v in counters.items()
                       if k.startswith("serving_shard_requeues_total")) >= 1
            # Zero silent corruption: the KKT re-check never tripped
            # on a retried result it had to reject terminally.
            assert not any(k.startswith("serving_silent_corruption")
                           and v > 0 for k, v in counters.items())
            # The fleet healed: every shard is live again.
            assert sorted(service.supervisor.routable_indices()) == [0, 1]
        finally:
            service.close(timeout=60.0)
        _assert_clean_teardown(service, namespace)

    def test_worker_stall_recovers_cooperatively(self):
        # A stall shorter than the hard timeout suspends heartbeats:
        # the supervisor counts a miss and pokes cancel, the worker
        # resumes, and no restart happens.
        plan = FaultPlan(seed=2, faults=(
            Fault(kind="worker-stall", request=1, duration=0.9),))
        problems = _workload(repeats=2)
        with ShardedSolverService(shards=2, fault_plan=plan,
                                  settings=SETTINGS,
                                  heartbeat_interval=0.02,
                                  soft_timeout=0.25, hard_timeout=5.0,
                                  restart_backoff_base=0.02) as service:
            results = service.solve_batch(problems, timeout=120.0)
            assert all(r.converged for r in results)
            stats = service.stats()["supervisor"]
            assert sum(stats["heartbeat_misses"]) >= 1
            assert sum(stats["restarts"]) == 0

    def test_degraded_fallback_when_retries_exhausted(self):
        # A persistent crash directive (EVERY_ATTEMPT) kills every
        # incarnation that touches the request: the accelerator path
        # can never finish it, so the front door must degrade to the
        # in-process reference solver rather than lose the request.
        from repro.faults.plan import EVERY_ATTEMPT
        plan = FaultPlan(seed=3, faults=(
            Fault(kind="worker-crash", request=0, attempt=EVERY_ATTEMPT),))
        problem = generate_svm(10, seed=0)
        with ShardedSolverService(shards=1, fault_plan=plan,
                                  **FAST) as service:
            result = service.solve(problem, timeout=120.0)
            assert result.record.degraded
            assert result.record.tier == TIER_DEGRADED
            assert result.backend == "reference"
            assert result.converged
            assert problem.primal_residual(result.x) < 1e-2
            counters = service.metrics_snapshot()["counters"]
            assert counters.get("serving_degraded_total", 0) >= 1


class TestShmCorruption:
    def test_corrupt_segment_detected_quarantined_rebuilt(self):
        # Request 0's segment is corrupted in place before its batch
        # ships. The worker's checksum must fail closed, the segment
        # is quarantined + rebuilt from the cold path, and the request
        # still completes on the accelerator — corrupt bytes are never
        # deserialized, let alone served.
        plan = FaultPlan(seed=4, faults=(
            Fault(kind="shm-corrupt", request=0),))
        problems = _workload(repeats=2)
        service = ShardedSolverService(shards=2, fault_plan=plan, **FAST)
        namespace = service.store.namespace
        try:
            results = service.solve_batch(problems, timeout=120.0)
            assert all(r.converged for r in results)
            for problem, result in zip(problems, results):
                assert problem.primal_residual(result.x) < 1e-2
            store = service.stats()["store"]
            assert store["quarantines"] == 1
            # 2 structures + 1 republish after the quarantine.
            assert store["publishes"] == 3
            counters = service.metrics_snapshot()["counters"]
            assert sum(v for k, v in counters.items() if k.startswith(
                "serving_shm_checksum_failures_total")) >= 1
            assert counters.get("serving_shm_rebuilds_total", 0) >= 1
            # No restart needed: integrity failures are handled by
            # quarantine + requeue, not by killing the worker.
            assert service.stats()["supervisor"]["restarts"] == [0, 0]
        finally:
            service.close(timeout=60.0)
        _assert_clean_teardown(service, namespace)


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedSolverService(shards=0)

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            ShardedSolverService(shards=1, algorithm="simplex")
