"""Accelerator recovery: checkpoint/rollback, deadlines, breakers."""

import numpy as np
import pytest

from repro.exceptions import DeadlineExceededError, FaultDetectedError
from repro.faults import (CLOSED, HALF_OPEN, OPEN, EVERY_ATTEMPT,
                          CircuitBreaker, Fault, FaultInjector,
                          RecoveryPolicy, solution_ok)
from repro.problems import generate
from repro.serving.arch_cache import build_artifact
from repro.serving.pool import solve_job
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3)

#: An exponent-bit flip in an early HBM load (problem data entering
#: the chip) — drives the residual non-finite within one segment.
VIOLENT = [Fault(kind="hbm-read", request=0, attempt=EVERY_ATTEMPT,
                 op_index=2, element=1, bit=62)]


@pytest.fixture(scope="module")
def bound():
    problem = generate("control", 4, seed=0)
    artifact = build_artifact(problem, 4,
                              max_admm_iter=SETTINGS.max_iter)
    return problem, artifact


class TestRollback:
    def test_rollback_heals_violent_corruption(self, bound):
        problem, artifact = bound
        with np.errstate(all="ignore"):
            result = solve_job(problem, artifact, SETTINGS, verify=False,
                               injector=FaultInjector(VIOLENT))
        assert result.rollbacks >= 1
        assert result.converged
        # The healed answer is a *correct* answer, not merely a flag.
        assert solution_ok(problem, result.x, result.y, result.z,
                           eps_abs=SETTINGS.eps_abs,
                           eps_rel=SETTINGS.eps_rel)

    def test_healed_solution_matches_clean_solution(self, bound):
        problem, artifact = bound
        clean = solve_job(problem, artifact, SETTINGS, verify=False)
        with np.errstate(all="ignore"):
            healed = solve_job(problem, artifact, SETTINGS, verify=False,
                               injector=FaultInjector(VIOLENT))
        # Rollback restores the exact checkpoint, so once the transient
        # window has passed the trajectories re-converge; solutions
        # agree to solver tolerance.
        assert np.allclose(clean.x, healed.x, atol=1e-2)

    def test_exhausted_rollback_budget_raises(self, bound):
        problem, artifact = bound
        with np.errstate(all="ignore"), \
                pytest.raises(FaultDetectedError) as excinfo:
            solve_job(problem, artifact, SETTINGS, verify=False,
                      injector=FaultInjector(VIOLENT),
                      recovery=RecoveryPolicy(max_rollbacks=0))
        assert excinfo.value.events          # the faults are accounted

    def test_armed_but_silent_injector_is_bitwise_clean(self, bound):
        problem, artifact = bound
        clean = solve_job(problem, artifact, SETTINGS, verify=False)
        silent = FaultInjector([Fault(kind="mac-flip", request=0,
                                      op_index=10 ** 9)])
        guarded = solve_job(problem, artifact, SETTINGS, verify=False,
                            injector=silent)
        assert not silent.events
        np.testing.assert_array_equal(clean.x, guarded.x)
        np.testing.assert_array_equal(clean.y, guarded.y)
        np.testing.assert_array_equal(clean.z, guarded.z)
        assert clean.total_cycles == guarded.total_cycles
        assert guarded.rollbacks == 0


class TestDeadline:
    def test_expired_deadline_raises_between_segments(self, bound):
        problem, artifact = bound
        with pytest.raises(DeadlineExceededError):
            solve_job(problem, artifact, SETTINGS, verify=False,
                      deadline_seconds=0.0)

    def test_generous_deadline_is_harmless(self, bound):
        problem, artifact = bound
        result = solve_job(problem, artifact, SETTINGS, verify=False,
                           deadline_seconds=3600.0)
        assert result.converged


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=1.0)
        for t in (0.0, 0.1):
            breaker.record_failure(t)
            assert breaker.state == CLOSED
        breaker.record_failure(0.2)
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allows(0.5)

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=1.0)
        breaker.record_failure(0.0)
        assert not breaker.allows(0.5)
        assert breaker.allows(1.5)                 # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allows(1.6)             # probe verdict pending

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=1.0)
        breaker.record_failure(0.0)
        assert breaker.allows(1.5)
        breaker.record_success(1.6)
        assert breaker.state == CLOSED
        assert breaker.allows(1.7)

    def test_probe_failure_reopens_and_restarts_window(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=1.0)
        breaker.trip(0.0)
        assert breaker.allows(1.5)
        breaker.record_failure(1.6)                # single failure reopens
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allows(2.0)
        assert breaker.allows(2.7)

    def test_trip_opens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=99)
        breaker.trip(5.0)
        assert breaker.state == OPEN
        assert breaker.transitions == [(5.0, OPEN)]
