"""Tests for fill-reducing orderings."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.linalg import (ldl_symbolic, minimum_degree, natural,
                          reverse_cuthill_mckee, symmetric_adjacency)
from repro.sparse import CSCMatrix

from helpers import random_spd_dense


def upper_csc(dense):
    return CSCMatrix.from_dense(np.triu(dense))


def fill_after(upper, perm):
    return ldl_symbolic(upper.symmetric_permute_upper(perm)).l_nnz


class TestAdjacency:
    def test_excludes_diagonal(self):
        a = np.array([[2.0, 1.0], [1.0, 2.0]])
        adj = symmetric_adjacency(upper_csc(a))
        assert adj == [{1}, {0}]

    def test_requires_square(self, rng):
        with pytest.raises(ShapeError):
            symmetric_adjacency(CSCMatrix.from_dense(np.ones((2, 3))))


class TestOrderings:
    def test_natural(self):
        np.testing.assert_array_equal(natural(4), [0, 1, 2, 3])

    def test_minimum_degree_is_permutation(self, rng):
        a = random_spd_dense(rng, 20, 0.2)
        perm = minimum_degree(upper_csc(a))
        np.testing.assert_array_equal(np.sort(perm), np.arange(20))

    def test_rcm_is_permutation(self, rng):
        a = random_spd_dense(rng, 20, 0.2)
        perm = reverse_cuthill_mckee(upper_csc(a))
        np.testing.assert_array_equal(np.sort(perm), np.arange(20))

    def test_minimum_degree_beats_worst_case_on_arrow(self):
        # Reversed arrow matrix: dense first row/col. Natural order fills
        # completely; minimum degree eliminates the hub last -> no fill.
        n = 12
        a = np.eye(n) * 4
        a[0, :] = 1.0
        a[:, 0] = 1.0
        a[0, 0] = 4.0
        upper = upper_csc(a)
        fill_natural = fill_after(upper, natural(n))
        fill_md = fill_after(upper, minimum_degree(upper))
        assert fill_md == n - 1  # only the original arrow entries
        assert fill_natural == n * (n - 1) // 2  # complete fill-in

    def test_ordered_factorization_solves_correctly(self, rng):
        n = 15
        a = random_spd_dense(rng, n, 0.25)
        upper = upper_csc(a)
        perm = minimum_degree(upper)
        permuted = upper.symmetric_permute_upper(perm)
        from repro.linalg import ldl_factor
        factor = ldl_factor(permuted)
        b = rng.standard_normal(n)
        x_perm = factor.solve(b[perm])
        x = np.empty(n)
        x[perm] = x_perm
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_rcm_reduces_bandwidth_on_shuffled_banded(self, rng):
        n = 30
        banded = np.diag(np.full(n, 4.0))
        for k in (1, 2):
            banded += np.diag(np.ones(n - k), k) + np.diag(np.ones(n - k), -k)
        shuffle = rng.permutation(n)
        shuffled = banded[np.ix_(shuffle, shuffle)]
        upper = upper_csc(shuffled)
        perm = reverse_cuthill_mckee(upper)
        reordered = upper.symmetric_permute_upper(perm).to_dense()
        full = reordered + reordered.T
        rows, cols = np.nonzero(full)
        bandwidth = np.abs(rows - cols).max()
        orig_rows, orig_cols = np.nonzero(shuffled)
        orig_bandwidth = np.abs(orig_rows - orig_cols).max()
        assert bandwidth <= orig_bandwidth
