"""End-to-end tests of the OSQP ADMM solver."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.qp import QProblem
from repro.solver import (OSQPSettings, OSQPSolver, SolverStatus, solve)
from repro.sparse import CSRMatrix, eye

from helpers import random_dense, random_spd_dense


def simple_box_qp():
    """min 1/2 x'Px + q'x s.t. -1 <= x <= 1 with known solution."""
    p = np.array([[4.0, 1.0], [1.0, 2.0]])
    q = np.array([1.0, 1.0])
    prob = QProblem(P=CSRMatrix.from_dense(p), q=q, A=eye(2),
                    l=-np.ones(2), u=np.ones(2))
    # Unconstrained minimizer -P^{-1} q = [-1/7, -3/7] is interior.
    x_star = np.linalg.solve(p, -q)
    return prob, x_star


def random_strongly_convex_qp(rng, n=10, m=14):
    p = random_spd_dense(rng, n, 0.4)
    a = random_dense(rng, m, n, 0.5)
    # Make bounds strictly feasible around a random point.
    x0 = rng.standard_normal(n)
    ax0 = a @ x0
    slack = np.abs(rng.standard_normal(m)) + 0.1
    return QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a),
                    l=ax0 - slack, u=ax0 + slack)


def reference_solution(prob, tol=1e-9):
    """Very accurate solution via our own solver at tight tolerance."""
    s = OSQPSettings(eps_abs=tol, eps_rel=tol, max_iter=20000,
                     linsys="ldl", polish=True)
    res = OSQPSolver(prob, s).solve()
    assert res.status.is_optimal
    return res


class TestBasicSolve:
    def test_interior_solution(self):
        prob, x_star = simple_box_qp()
        res = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6))
        assert res.status == SolverStatus.SOLVED
        np.testing.assert_allclose(res.x, x_star, atol=1e-4)

    def test_active_bound_solution(self):
        # min 1/2 x^2 - 10x  s.t. x <= 1 -> x* = 1, y* = -(dL/dx)=...
        prob = QProblem(P=eye(1), q=[-10.0], A=eye(1), l=[-np.inf], u=[1.0])
        res = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6))
        assert res.status.is_optimal
        np.testing.assert_allclose(res.x, [1.0], atol=1e-4)
        # Stationarity: P x + q + A'y = 0 -> y = 9.
        np.testing.assert_allclose(res.y, [9.0], atol=1e-3)

    def test_equality_constraint(self):
        # min 1/2 (x1^2 + x2^2) s.t. x1 + x2 = 1 -> x = (0.5, 0.5).
        prob = QProblem(P=eye(2), q=np.zeros(2),
                        A=CSRMatrix.from_dense([[1.0, 1.0]]),
                        l=[1.0], u=[1.0])
        res = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6))
        assert res.status.is_optimal
        np.testing.assert_allclose(res.x, [0.5, 0.5], atol=1e-4)

    def test_objective_value_reported(self):
        prob, x_star = simple_box_qp()
        res = solve(prob, OSQPSettings(eps_abs=1e-7, eps_rel=1e-7))
        assert np.isclose(res.info.obj_val, prob.objective(x_star),
                          atol=1e-5)

    def test_pcg_and_ldl_backends_agree(self, rng):
        prob = random_strongly_convex_qp(rng)
        res_pcg = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                           linsys="pcg"))
        res_ldl = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                           linsys="ldl"))
        assert res_pcg.status.is_optimal and res_ldl.status.is_optimal
        np.testing.assert_allclose(res_pcg.x, res_ldl.x, atol=1e-3)

    def test_scaling_off_still_solves(self, rng):
        prob = random_strongly_convex_qp(rng)
        res = solve(prob, OSQPSettings(scaling=0, eps_abs=1e-5,
                                       eps_rel=1e-5))
        assert res.status.is_optimal

    def test_kkt_conditions_at_solution(self, rng):
        prob = random_strongly_convex_qp(rng)
        res = solve(prob, OSQPSettings(eps_abs=1e-7, eps_rel=1e-7,
                                       max_iter=10000))
        assert res.status.is_optimal
        # Stationarity.
        grad = (prob.P.matvec(res.x) + prob.q + prob.A.rmatvec(res.y))
        assert np.abs(grad).max() < 1e-4
        # Primal feasibility.
        assert prob.primal_residual(res.x) < 1e-4
        # Complementary slackness via the projection identity.
        ax = prob.A.matvec(res.x)
        for i in range(prob.m):
            if res.y[i] > 1e-5:
                assert abs(ax[i] - prob.u[i]) < 1e-3
            elif res.y[i] < -1e-5:
                assert abs(ax[i] - prob.l[i]) < 1e-3

    def test_no_constraints(self, rng):
        # m = 0: pure unconstrained QP.
        n = 5
        p = random_spd_dense(rng, n, 0.5)
        q = rng.standard_normal(n)
        prob = QProblem(P=CSRMatrix.from_dense(p), q=q,
                        A=CSRMatrix.zeros((0, n)),
                        l=np.zeros(0), u=np.zeros(0))
        res = solve(prob, OSQPSettings(eps_abs=1e-7, eps_rel=1e-7))
        assert res.status.is_optimal
        np.testing.assert_allclose(res.x, np.linalg.solve(p, -q), atol=1e-3)


class TestWarmStartAndRho:
    def test_warm_start_reduces_iterations(self, rng):
        prob = random_strongly_convex_qp(rng)
        s = OSQPSettings(eps_abs=1e-6, eps_rel=1e-6)
        cold = OSQPSolver(prob, s)
        cold_res = cold.solve()
        warm = OSQPSolver(prob, s)
        warm.warm_start(x=cold_res.x, y=cold_res.y)
        warm_res = warm.solve()
        assert warm_res.status.is_optimal
        assert warm_res.info.iterations <= cold_res.info.iterations

    def test_adaptive_rho_triggers_on_bad_initial_rho(self, rng):
        prob = random_strongly_convex_qp(rng)
        s = OSQPSettings(rho=1e-5, adaptive_rho=True,
                         adaptive_rho_interval=25, max_iter=4000)
        res = OSQPSolver(prob, s).solve()
        assert res.status.is_optimal
        assert res.info.rho_updates >= 1
        assert res.info.rho_final != pytest.approx(1e-5)

    def test_rho_vector_stiffens_equalities(self, rng):
        prob = QProblem(P=eye(2), q=np.zeros(2),
                        A=CSRMatrix.from_dense([[1.0, 1.0], [1.0, -1.0]]),
                        l=[1.0, -np.inf], u=[1.0, 1.0])
        solver = OSQPSolver(prob)
        assert solver.rho_vec[0] > solver.rho_vec[1]

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            OSQPSettings(alpha=2.5)
        with pytest.raises(ValueError):
            OSQPSettings(rho=-1.0)
        with pytest.raises(ValueError):
            OSQPSettings(linsys="magic")
        with pytest.raises(ValueError):
            OSQPSettings(eps_abs=0.0, eps_rel=0.0)


class TestInfeasibility:
    def test_primal_infeasible_detected(self):
        # x >= 1 and x <= -1 simultaneously.
        prob = QProblem(P=eye(1), q=[0.0],
                        A=CSRMatrix.from_dense([[1.0], [1.0]]),
                        l=[1.0, -np.inf], u=[np.inf, -1.0])
        res = solve(prob, OSQPSettings(max_iter=4000))
        assert res.status == SolverStatus.PRIMAL_INFEASIBLE
        assert res.prim_inf_cert is not None

    def test_dual_infeasible_detected(self):
        # min -x with x >= 0 only: unbounded below.
        prob = QProblem(P=CSRMatrix.zeros((1, 1)), q=[-1.0],
                        A=eye(1), l=[0.0], u=[np.inf])
        res = solve(prob, OSQPSettings(max_iter=4000))
        assert res.status == SolverStatus.DUAL_INFEASIBLE
        assert res.dual_inf_cert is not None

    def test_max_iter_status(self, rng):
        prob = random_strongly_convex_qp(rng)
        res = solve(prob, OSQPSettings(max_iter=1, check_termination=1,
                                       eps_abs=1e-12, eps_rel=1e-12))
        assert res.status in (SolverStatus.MAX_ITER_REACHED,
                              SolverStatus.SOLVED_INACCURATE)


class TestPolish:
    def test_polish_improves_accuracy(self, rng):
        prob = random_strongly_convex_qp(rng)
        loose = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3, polish=False)
        polished = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3, polish=True)
        res_plain = solve(prob, loose)
        res_polish = solve(prob, polished)
        assert res_polish.status.is_optimal
        if res_polish.info.polished:
            assert res_polish.info.dua_res <= res_plain.info.dua_res + 1e-12

    def test_polish_rejects_sign_inconsistent_active_set(self):
        # Regression: seed 16 produces an ADMM solution whose dual signs
        # mislead the active-set guess; the polished point zeroed the
        # KKT residuals of the *wrong* equality-constrained problem and
        # used to be accepted. Complementary-slackness signs must hold.
        rng = np.random.default_rng(16)
        prob = random_strongly_convex_qp(rng, n=6, m=8)
        res = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                       max_iter=10000, polish=True))
        assert res.status.is_optimal
        ax = prob.A.matvec(res.x)
        for i in range(prob.m):
            lower_active = abs(ax[i] - prob.l[i]) < 1e-6
            upper_active = abs(ax[i] - prob.u[i]) < 1e-6
            if res.y[i] > 1e-5:
                assert upper_active
            if res.y[i] < -1e-5:
                assert lower_active

    def test_polished_flag_set(self):
        prob, x_star = simple_box_qp()
        res = solve(prob, OSQPSettings(polish=True))
        assert res.status.is_optimal
        if res.info.polished:
            np.testing.assert_allclose(res.x, x_star, atol=1e-8)


class TestProperty:
    @given(st.integers(2, 8), st.integers(0, 5000))
    @hyp_settings(max_examples=15, deadline=None)
    def test_solves_random_feasible_qps(self, n, seed):
        rng = np.random.default_rng(seed)
        prob = random_strongly_convex_qp(rng, n=n, m=n + 3)
        res = solve(prob, OSQPSettings(eps_abs=1e-5, eps_rel=1e-5,
                                       max_iter=10000))
        assert res.status.is_optimal
        assert prob.primal_residual(res.x) < 1e-3

    @given(st.integers(0, 5000))
    @hyp_settings(max_examples=10, deadline=None)
    def test_objective_not_worse_than_feasible_point(self, seed):
        rng = np.random.default_rng(seed)
        prob = random_strongly_convex_qp(rng, n=6, m=8)
        res = solve(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                       max_iter=10000, polish=True))
        assert res.status.is_optimal
        # Compare against random feasible points: z = clip(Ax0) trick is
        # hard, so use the returned x for feasibility and check the
        # objective is a local min along feasible coordinate moves.
        base = prob.objective(res.x)
        for _ in range(5):
            direction = rng.standard_normal(prob.n) * 1e-2
            candidate = res.x + direction
            if prob.primal_residual(candidate) < 1e-9:
                assert prob.objective(candidate) >= base - 1e-6
