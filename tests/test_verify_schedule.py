"""Pass 2 (schedule/CVB checker): clean suite artifacts, seeded defects."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.customization import baseline_customization, customize_problem
from repro.problems import generate_control, generate_svm
from repro.verify import verify_customization, verify_cvb, verify_schedule


@pytest.fixture(scope="module")
def custom():
    return customize_problem(generate_svm(16, seed=0), 8)


def pick_matrix(custom):
    """A matrix whose schedule uses a multi-output structure, if any."""
    for name in sorted(custom.matrices):
        m = custom.matrices[name]
        if any(p.structure.n_outputs > 1 for p in m.schedule.packs):
            return m
    return custom.matrices[sorted(custom.matrices)[0]]


class TestAcceptance:
    def test_customized_suite_problem_is_clean(self, custom):
        report = verify_customization(custom)
        assert report.ok
        assert not report.warnings

    def test_baseline_is_clean_modulo_depth_info(self):
        prob = generate_control(4, seed=1)
        base = baseline_customization(prob, 8)
        report = verify_customization(base)
        assert report.ok
        assert not report.warnings
        # Naive duplication charges the full vector length; the checker
        # notes the over-provision without failing the artifact.
        infos = {d.code for d in report.diagnostics} - {
            d.code for d in report.errors}
        assert infos <= {"over-provisioned-depth"}


class TestScheduleDefects:
    def test_truncated_dictionary_is_caught(self, custom):
        m = pick_matrix(custom)
        base = baseline_customization(generate_svm(16, seed=0), 8)
        foreign = base.architecture
        if foreign == custom.architecture:
            pytest.skip("customized architecture degenerated to baseline")
        sched = m.schedule
        original = sched.architecture
        try:
            sched.architecture = foreign
            report = verify_schedule(sched)
            assert "dictionary-gap" in {d.code for d in report.errors}
        finally:
            sched.architecture = original

    def test_dropped_pack_is_coverage_gap(self, custom):
        m = pick_matrix(custom)
        sched = m.schedule
        removed = sched.packs.pop()
        try:
            report = verify_schedule(sched)
            assert "coverage-gap" in {d.code for d in report.errors}
        finally:
            sched.packs.append(removed)

    def test_width_mismatch_short_circuits(self, custom):
        m = pick_matrix(custom)
        other = customize_problem(generate_svm(16, seed=0), 4)
        sched = m.schedule
        original = sched.architecture
        try:
            sched.architecture = other.architecture
            report = verify_schedule(sched)
            assert {d.code for d in report.errors} == {"width-mismatch"}
        finally:
            sched.architecture = original


class TestCVBDefects:
    def test_translation_gap_unplaced_element(self, custom):
        m = pick_matrix(custom)
        layout = m.cvb
        requested = np.flatnonzero(layout.requests.any(axis=1))
        j = int(requested[0])
        saved = int(layout.location[j])
        try:
            layout.location[j] = -1
            report = verify_cvb(m.schedule, layout)
            assert "translation-gap" in {d.code for d in report.errors}
        finally:
            layout.location[j] = saved

    def test_depth_undercount(self, custom):
        m = pick_matrix(custom)
        layout = m.cvb
        requested = np.flatnonzero(layout.requests.any(axis=1))
        j = int(requested[0])
        saved = int(layout.location[j])
        try:
            layout.location[j] = layout.depth + 3
            report = verify_cvb(m.schedule, layout)
            assert "depth-undercount" in {d.code for d in report.errors}
        finally:
            layout.location[j] = saved

    def test_bank_oversubscription(self, custom):
        # Find a bank that reads two different elements, then force
        # both into one depth row: two reads on a single-port bank.
        for name in sorted(custom.matrices):
            m = custom.matrices[name]
            layout = m.cvb
            bank_load = layout.requests.sum(axis=0)
            banks = np.flatnonzero(bank_load >= 2)
            if banks.size == 0:
                continue
            k = int(banks[0])
            j1, j2 = (int(j) for j in
                      np.flatnonzero(layout.requests[:, k])[:2])
            saved = int(layout.location[j2])
            try:
                layout.location[j2] = int(layout.location[j1])
                report = verify_cvb(m.schedule, layout)
                codes = {d.code for d in report.errors}
                assert "bank-oversubscription" in codes
            finally:
                layout.location[j2] = saved
            return
        pytest.skip("no bank with two requested elements in this problem")

    @given(st.data())
    @hyp_settings(max_examples=15, deadline=None)
    def test_any_unplaced_requested_element_is_caught(self, custom, data):
        m = pick_matrix(custom)
        layout = m.cvb
        requested = np.flatnonzero(layout.requests.any(axis=1))
        j = int(data.draw(st.sampled_from([int(x) for x in requested])))
        saved = int(layout.location[j])
        try:
            layout.location[j] = -1
            report = verify_cvb(m.schedule, layout)
            assert "translation-gap" in {d.code for d in report.errors}
        finally:
            layout.location[j] = saved


class TestFirstFitAudit:
    def test_first_fit_layouts_satisfy_single_port(self):
        """The First-Fit packer must never co-locate two elements
        requested by the same bank — audited across several problems."""
        for seed in range(3):
            custom = customize_problem(generate_svm(12, seed=seed), 8)
            for name in sorted(custom.matrices):
                m = custom.matrices[name]
                report = verify_cvb(m.schedule, m.cvb)
                assert report.ok, report.render()
