"""Coalescer edge cases and serving-layer batch semantics.

Unit tests drive the :class:`repro.batch.Coalescer` with an injected
fake clock (linger expiry, deadline headroom, mixed-key isolation);
the service tests check that coalesced ``solve_batch`` calls preserve
solo semantics — bitwise-identical results, per-lane deadlines, and
correct per-group batch widths.
"""

import numpy as np
import pytest

from repro.batch import Coalescer
from repro.problems import (generate_control, generate_lasso,
                            perturb_numeric)
from repro.serving import SolverService
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def service(**kwargs):
    kwargs.setdefault("settings", SETTINGS)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("mode", "serial")
    return SolverService(**kwargs)


class TestCoalescerFlush:
    def test_full_group_flushes_immediately(self):
        clk = FakeClock()
        co = Coalescer(max_batch=3, max_linger=1.0, clock=clk)
        assert co.offer("k", "a") is None
        assert co.offer("k", "b") is None
        assert co.offer("k", "c") == ["a", "b", "c"]   # FIFO order
        assert co.pending == 0

    def test_linger_expiry_flushes_partial_batch(self):
        clk = FakeClock()
        co = Coalescer(max_batch=8, max_linger=0.010, clock=clk)
        co.offer("k", 0)
        clk.advance(0.004)
        co.offer("k", 1)
        # Linger is measured from the oldest entry; not due yet.
        assert co.due() == []
        assert co.pending == 2
        clk.advance(0.007)                 # oldest has now waited 11 ms
        assert co.due() == [("k", [0, 1])]
        assert co.pending == 0
        assert co.due() == []              # flushing pops the group

    def test_mixed_keys_never_cobatch(self):
        clk = FakeClock()
        co = Coalescer(max_batch=2, max_linger=1.0, clock=clk)
        # Alternating keys: four offers, two independent groups.
        assert co.offer("a", "a0") is None
        assert co.offer("b", "b0") is None
        assert co.offer("a", "a1") == ["a0", "a1"]
        assert co.offer("b", "b1") == ["b0", "b1"]
        # Partial groups flush per key too, never merged.
        co.offer("a", "a2")
        co.offer("b", "b2")
        flushed = dict(co.flush_all())
        assert flushed == {"a": ["a2"], "b": ["b2"]}

    def test_deadline_headroom_flushes_early(self):
        clk = FakeClock(100.0)
        co = Coalescer(max_batch=8, max_linger=0.050,
                       deadline_headroom=0.010, clock=clk)
        co.offer("k", "slack", deadline_at=200.0)
        assert co.due() == []
        # A lane whose deadline is within the headroom forces the
        # whole group out long before the linger expires.
        co.offer("k", "tight", deadline_at=clk() + 0.008)
        assert co.due() == [("k", ["slack", "tight"])]

    def test_next_due_at_tracks_soonest_trigger(self):
        clk = FakeClock(10.0)
        co = Coalescer(max_batch=8, max_linger=0.020,
                       deadline_headroom=0.005, clock=clk)
        assert co.next_due_at() is None
        co.offer("k", 0)
        assert co.next_due_at() == pytest.approx(10.020)
        # A near deadline pulls the flush time earlier than the linger.
        co.offer("k", 1, deadline_at=10.012)
        assert co.next_due_at() == pytest.approx(10.007)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Coalescer(max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(max_linger=-1.0)


class TestServingBatchSemantics:
    def test_batched_results_bitwise_match_per_request(self):
        base = generate_lasso(8, seed=11)
        problems = [base] + [perturb_numeric(base, seed=s)
                             for s in (1, 2, 3)]
        with service() as svc:
            batched = svc.solve_batch(problems)
        with service() as svc:
            solo = svc.solve_batch(problems, coalesce=False)
        for b, s in zip(batched, solo):
            assert b.x.tobytes() == s.x.tobytes()
            assert b.y.tobytes() == s.y.tobytes()
            assert b.record.admm_iterations == s.record.admm_iterations
            assert b.record.simulated_cycles == s.record.simulated_cycles
        widths = [r.record.batch_width for r in batched]
        assert widths == [4, 4, 4, 4]
        assert all(r.record.batch_width == 1 for r in solo)

    def test_batch_metrics_and_flush_reasons(self):
        base = generate_lasso(8, seed=4)
        problems = [perturb_numeric(base, seed=s) for s in range(5)]
        with service(max_batch=4) as svc:
            svc.solve_batch(problems)
            snap = svc.metrics.snapshot()
        c = snap["counters"]
        assert c["serving_batches_total"] == 1
        assert c["serving_batched_requests_total"] == 4
        assert c['serving_batch_flushes_total{reason="full"}'] == 1
        assert c['serving_batch_flushes_total{reason="drain"}'] == 1
        assert snap["histograms"]["serving_batch_width"]["max"] == 4
        # The fifth request solves solo (group of one).
        assert c["serving_requests_total"] == 5

    def test_mixed_structures_group_by_fingerprint(self):
        lasso = generate_lasso(8, seed=0)
        control = generate_control(4, horizon=5, seed=0)
        problems = [lasso, control,
                    perturb_numeric(lasso, seed=1),
                    perturb_numeric(control, seed=1)]
        with service() as svc:
            results = svc.solve_batch(problems)
        keys = [r.record.fingerprint_key for r in results]
        assert keys[0] == keys[2] and keys[1] == keys[3]
        assert keys[0] != keys[1]
        # Each structure coalesces with its own kind only.
        assert [r.record.batch_width for r in results] == [2, 2, 2, 2]
        assert all(r.converged for r in results)

    def test_lane_deadline_degrades_only_that_lane(self):
        base = generate_lasso(8, seed=7)
        problems = [perturb_numeric(base, seed=s) for s in range(4)]
        with service() as svc:
            results = svc.solve_batch(problems,
                                      deadlines=[None, 0.0, None, None])
            snap = svc.metrics.snapshot()
        missed = results[1].record
        assert missed.deadline_missed
        assert missed.degraded
        assert missed.backend == "reference"
        assert np.isfinite(results[1].x).all()
        for r in (results[0], results[2], results[3]):
            assert r.record.backend == "rsqp"
            assert not r.record.deadline_missed
            assert not r.record.degraded
            assert r.record.batch_width == 4
        c = snap["counters"]
        assert c['serving_batch_lane_fallbacks_total{reason="deadline"}'] == 1
        assert c["serving_deadline_misses_total"] == 1


class TestFlushCallback:
    def collect(self):
        events = []
        return events, lambda reason, key, items: events.append(
            (reason, key, list(items)))

    def test_full_flush_emits(self):
        events, hook = self.collect()
        co = Coalescer(max_batch=2, max_linger=1.0, clock=FakeClock(),
                       on_flush=hook)
        co.offer("k", "a")
        co.offer("k", "b")
        assert events == [("full", "k", ["a", "b"])]

    def test_due_flush_emits(self):
        clk = FakeClock()
        events, hook = self.collect()
        co = Coalescer(max_batch=8, max_linger=0.010, clock=clk,
                       on_flush=hook)
        co.offer("k", "a")
        clk.advance(0.011)
        co.due()
        assert events == [("due", "k", ["a"])]

    def test_drain_emits_and_releases_every_lane(self):
        # The shutdown audit: every queued lane leaves exactly once,
        # keyed by its own group, when intake stops.
        events, hook = self.collect()
        co = Coalescer(max_batch=8, max_linger=10.0, clock=FakeClock(),
                       on_flush=hook)
        lanes = [("a", 0), ("b", 1), ("a", 2), ("c", 3), ("b", 4)]
        for key, lane in lanes:
            co.offer(key, lane)
        flushed = co.drain()
        assert co.pending == 0
        assert dict(flushed) == {"a": [0, 2], "b": [1, 4], "c": [3]}
        assert events == [("drain", "a", [0, 2]), ("drain", "b", [1, 4]),
                          ("drain", "c", [3])]
        released = [lane for _, _, items in events for lane in items]
        assert sorted(released) == [0, 1, 2, 3, 4]  # nothing lost
        assert co.drain() == []                     # idempotent

    def test_no_callback_is_fine(self):
        co = Coalescer(max_batch=2, clock=FakeClock())
        co.offer("k", "a")
        assert co.offer("k", "b") == ["a", "b"]
        assert co.drain() == []
