"""Smoke tests: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4  # quickstart + >= 3 domain scenarios


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()  # every example reports something


def test_quickstart_agreement_message():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "software and simulated hardware agree" in proc.stdout


def test_custom_accelerator_writes_design(tmp_path):
    # The example writes next to itself; just assert the manifest stage
    # reported a fitting design.
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "custom_accelerator.py")],
        capture_output=True, text=True, timeout=300)
    assert "fits U50   : True" in proc.stdout
    design_dir = EXAMPLES_DIR / "generated_design"
    assert (design_dir / "build_manifest.json").exists()
