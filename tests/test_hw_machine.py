"""Tests for the ISA, the cycle-accurate machine, and cost accounting."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.hw import (Control, DataTransfer, Loop, Machine, MatrixResource,
                      PIPELINE_OVERHEAD, Program, ScalarOp, ScalarOpKind,
                      SpMV, VecDup, VectorOp, VectorOpKind)
from repro.sparse import CSRMatrix

from helpers import random_dense


def make_machine(c=4, with_matrix=False, rng=None):
    matrices = {}
    if with_matrix:
        rng = rng or np.random.default_rng(0)
        mat = CSRMatrix.from_dense(random_dense(rng, 6, 6, 0.5))
        matrices["M"] = MatrixResource(name="M", matrix=mat,
                                       spmv_cycles=10, cvb_depth=3)
    return Machine(c, matrices)


class TestScalarOps:
    @pytest.mark.parametrize("op,a,b,expected", [
        (ScalarOpKind.ADD, 2.0, 3.0, 5.0),
        (ScalarOpKind.SUB, 2.0, 3.0, -1.0),
        (ScalarOpKind.MUL, 2.0, 3.0, 6.0),
        (ScalarOpKind.DIV, 3.0, 2.0, 1.5),
        (ScalarOpKind.MAX, 2.0, 3.0, 3.0),
    ])
    def test_binary_ops(self, op, a, b, expected):
        m = make_machine()
        m.set_scalar("a", a)
        m.set_scalar("b", b)
        prog = Program([ScalarOp(op, "out", "a", "b")])
        m.run(prog)
        assert m.scalars["out"] == expected

    def test_sqrt_and_mov(self):
        m = make_machine()
        m.set_scalar("a", 9.0)
        m.run(Program([ScalarOp(ScalarOpKind.SQRT, "s", "a"),
                       ScalarOp(ScalarOpKind.MOV, "c", "s")]))
        assert m.scalars["s"] == 3.0
        assert m.scalars["c"] == 3.0

    def test_sqrt_negative_rejected(self):
        m = make_machine()
        m.set_scalar("a", -1.0)
        with pytest.raises(SimulationError):
            m.run(Program([ScalarOp(ScalarOpKind.SQRT, "s", "a")]))

    def test_division_by_zero_rejected(self):
        m = make_machine()
        m.set_scalar("a", 1.0)
        m.set_scalar("z", 0.0)
        with pytest.raises(SimulationError):
            m.run(Program([ScalarOp(ScalarOpKind.DIV, "out", "a", "z")]))

    def test_literal_operands(self):
        m = make_machine()
        m.run(Program([ScalarOp(ScalarOpKind.ADD, "out", 1.5, 2.5)]))
        assert m.scalars["out"] == 4.0

    def test_unknown_register_rejected(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run(Program([ScalarOp(ScalarOpKind.ADD, "out", "ghost", 1.0)]))


class TestVectorOps:
    def test_axpby(self):
        m = make_machine()
        m.vb["a"] = np.array([1.0, 2.0])
        m.vb["b"] = np.array([10.0, 20.0])
        m.set_scalar("al", 2.0)
        m.run(Program([VectorOp(VectorOpKind.AXPBY, "out", ("a", "b"),
                                alpha="al", beta=0.5)]))
        np.testing.assert_allclose(m.vb["out"], [7.0, 14.0])

    def test_scale_add(self):
        m = make_machine()
        m.vb["a"] = np.array([1.0, 1.0])
        m.vb["b"] = np.array([2.0, 4.0])
        m.run(Program([VectorOp(VectorOpKind.SCALE_ADD, "a", ("a", "b"),
                                alpha=0.5)]))
        np.testing.assert_allclose(m.vb["a"], [2.0, 3.0])

    def test_ewmul_clip_copy(self):
        m = make_machine()
        m.vb["x"] = np.array([-2.0, 0.5, 3.0])
        m.vb["lo"] = np.full(3, -1.0)
        m.vb["hi"] = np.full(3, 1.0)
        m.vb["w"] = np.array([2.0, 2.0, 2.0])
        m.run(Program([
            VectorOp(VectorOpKind.CLIP, "c", ("x", "lo", "hi")),
            VectorOp(VectorOpKind.EWMUL, "e", ("c", "w")),
            VectorOp(VectorOpKind.COPY, "cp", ("e",)),
        ]))
        np.testing.assert_allclose(m.vb["c"], [-1.0, 0.5, 1.0])
        np.testing.assert_allclose(m.vb["cp"], [-2.0, 1.0, 2.0])

    def test_dot_writes_scalar(self):
        m = make_machine()
        m.vb["a"] = np.array([1.0, 2.0, 3.0])
        m.vb["b"] = np.array([4.0, 5.0, 6.0])
        m.run(Program([VectorOp(VectorOpKind.DOT, "d", ("a", "b"))]))
        assert m.scalars["d"] == 32.0

    def test_missing_vector_rejected(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run(Program([VectorOp(VectorOpKind.COPY, "o", ("ghost",))]))


class TestMemoryAndSpMV:
    def test_load_store_roundtrip(self):
        m = make_machine()
        m.write_hbm("v", [1.0, 2.0, 3.0])
        m.run(Program([DataTransfer("load", "v")]))
        m.vb["v"][0] = 99.0
        m.run(Program([DataTransfer("store", "v")]))
        assert m.read_hbm("v")[0] == 99.0

    def test_load_missing_rejected(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.run(Program([DataTransfer("load", "ghost")]))

    def test_bad_direction_rejected(self):
        m = make_machine()
        m.write_hbm("v", [1.0])
        with pytest.raises(SimulationError):
            m.run(Program([DataTransfer("sideways", "v")]))

    def test_spmv_requires_vecdup(self, rng):
        m = make_machine(with_matrix=True, rng=rng)
        m.vb["x"] = np.ones(6)
        with pytest.raises(SimulationError):
            m.run(Program([SpMV("M", "M", "out")]))

    def test_spmv_computes_matvec(self, rng):
        m = make_machine(with_matrix=True, rng=rng)
        x = rng.standard_normal(6)
        m.vb["x"] = x
        m.run(Program([VecDup("x", "M"), SpMV("M", "M", "out")]))
        np.testing.assert_allclose(m.vb["out"],
                                   m.matrices["M"].matrix.matvec(x))


class TestCycleAccounting:
    def test_vector_op_cycles(self):
        m = make_machine(c=4)
        m.vb["a"] = np.ones(10)
        m.vb["b"] = np.ones(10)
        m.run(Program([VectorOp(VectorOpKind.AXPBY, "o", ("a", "b"),
                                alpha=1.0, beta=1.0)]))
        # ceil(10 / 4) = 3 plus the pipeline overhead.
        assert m.stats.total_cycles == PIPELINE_OVERHEAD + 3

    def test_spmv_and_vecdup_cycles(self, rng):
        m = make_machine(with_matrix=True, rng=rng)
        m.vb["x"] = np.ones(6)
        m.run(Program([VecDup("x", "M"), SpMV("M", "M", "o")]))
        expected = (PIPELINE_OVERHEAD + 3) + (PIPELINE_OVERHEAD + 10)
        assert m.stats.total_cycles == expected

    def test_stats_by_class(self):
        m = make_machine()
        m.set_scalar("a", 1.0)
        m.run(Program([ScalarOp(ScalarOpKind.MOV, "b", "a"),
                       ScalarOp(ScalarOpKind.MOV, "c", "a")]))
        assert m.stats.by_class["ScalarOp"] == 2
        assert m.stats.instructions_executed == 2


class TestLoops:
    def test_loop_runs_max_iter_without_control(self):
        m = make_machine()
        m.set_scalar("acc", 0.0)
        body = [ScalarOp(ScalarOpKind.ADD, "acc", "acc", 1.0)]
        m.run(Program([Loop(body=body, max_iter=7, name="count")]))
        assert m.scalars["acc"] == 7.0
        assert m.stats.loop_iterations["count"] == 7

    def test_control_exits_early(self):
        m = make_machine()
        m.set_scalar("acc", 0.0)
        m.set_scalar("neg_limit", 3.5)
        body = [
            ScalarOp(ScalarOpKind.ADD, "acc", "acc", 1.0),
            ScalarOp(ScalarOpKind.SUB, "remaining", "neg_limit", "acc"),
            Control("remaining", 1.0),
        ]
        m.run(Program([Loop(body=body, max_iter=100, name="c")]))
        # Exits when 3.5 - acc < 1 -> acc = 3.
        assert m.scalars["acc"] == 3.0
        assert m.stats.loop_iterations["c"] == 3

    def test_nested_loops_count_inner_per_outer(self):
        m = make_machine()
        m.set_scalar("acc", 0.0)
        inner = Loop(body=[ScalarOp(ScalarOpKind.ADD, "acc", "acc", 1.0)],
                     max_iter=3, name="inner")
        outer = Loop(body=[inner], max_iter=2, name="outer")
        m.run(Program([outer]))
        assert m.scalars["acc"] == 6.0
        assert m.stats.loop_iterations["inner"] == 6
        assert m.stats.loop_iterations["outer"] == 2

    def test_control_exits_only_enclosing_loop(self):
        m = make_machine()
        m.set_scalar("outer_count", 0.0)
        m.set_scalar("zero", 0.0)
        inner = Loop(body=[Control("zero", 1.0)], max_iter=50, name="inner")
        outer = Loop(body=[
            inner,
            ScalarOp(ScalarOpKind.ADD, "outer_count", "outer_count", 1.0),
        ], max_iter=4, name="outer")
        m.run(Program([outer]))
        # Inner exits immediately each time; outer still runs 4 times.
        assert m.scalars["outer_count"] == 4.0
        assert m.stats.loop_iterations["inner"] == 4
