"""Checksummed shared-memory artifact store: publish/attach round
trips, every fail-closed integrity reason, generation discipline,
quarantine and leak-free close."""

import struct

import pytest

from repro.exceptions import ShmIntegrityError
from repro.serving.shm_store import (_HEADER, _MAGIC, SegmentRef,
                                     ShmArtifactStore, _attach_untracked,
                                     attach_artifact)


@pytest.fixture()
def store():
    s = ShmArtifactStore()
    yield s
    s.close()


PAYLOAD = {"schedule": list(range(50)), "cvb": b"\x01\x02" * 64,
           "name": "svm[00]"}


class TestRoundTrip:
    def test_publish_attach_returns_equal_object(self, store):
        ref = store.publish("k1", PAYLOAD)
        assert attach_artifact(ref) == PAYLOAD

    def test_ref_lookup(self, store):
        assert store.ref("k1") is None
        published = store.publish("k1", PAYLOAD)
        assert store.ref("k1") == published

    def test_many_keys_coexist(self, store):
        refs = {f"k{i}": store.publish(f"k{i}", {"i": i}) for i in range(5)}
        for key, ref in refs.items():
            assert attach_artifact(ref) == {"i": int(key[1:])}
        assert store.stats()["segments"] == 5

    def test_segment_name_fits_posix_limit(self, store):
        ref = store.publish("x" * 500, PAYLOAD)  # key length is unbounded
        assert len(ref.name) < 255
        assert attach_artifact(ref) == PAYLOAD


class TestGenerations:
    def test_republish_bumps_generation(self, store):
        r1 = store.publish("k", {"v": 1})
        r2 = store.publish("k", {"v": 2})
        assert r2.generation == r1.generation + 1
        assert attach_artifact(r2) == {"v": 2}

    def test_stale_ref_fails_closed(self, store):
        r1 = store.publish("k", {"v": 1})
        store.publish("k", {"v": 2})
        # Old generation's segment was unlinked by the republish.
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(r1)
        assert exc.value.reason == "missing"

    def test_generation_mismatch_on_live_segment(self, store):
        ref = store.publish("k", PAYLOAD)
        doctored = SegmentRef(key=ref.key, name=ref.name,
                              generation=ref.generation + 7,
                              digest=ref.digest,
                              payload_len=ref.payload_len)
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(doctored)
        assert exc.value.reason == "generation"


class TestIntegrityReasons:
    def test_corrupt_payload_fails_checksum(self, store):
        ref = store.publish("k", PAYLOAD)
        assert store.corrupt("k")
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(ref)
        assert exc.value.reason == "checksum"

    def test_corrupt_missing_key_is_noop(self, store):
        assert not store.corrupt("nope")

    def test_torn_header_bad_magic(self, store):
        ref = store.publish("k", PAYLOAD)
        seg = _attach_untracked(ref.name)
        try:
            seg.buf[:8] = b"\x00" * 8  # a half-written publish
        finally:
            seg.close()
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(ref)
        assert exc.value.reason == "magic"

    def test_unsupported_version(self, store):
        ref = store.publish("k", PAYLOAD)
        seg = _attach_untracked(ref.name)
        try:
            seg.buf[:_HEADER.size] = _HEADER.pack(
                _MAGIC, 99, 0, ref.generation, ref.payload_len,
                bytes.fromhex(ref.digest))
        finally:
            seg.close()
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(ref)
        assert exc.value.reason == "version"

    def test_length_lie_fails_closed(self, store):
        ref = store.publish("k", PAYLOAD)
        seg = _attach_untracked(ref.name)
        try:
            seg.buf[:_HEADER.size] = _HEADER.pack(
                _MAGIC, 1, 0, ref.generation, ref.payload_len + 4096,
                bytes.fromhex(ref.digest))
        finally:
            seg.close()
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(ref)
        assert exc.value.reason == "length"

    def test_missing_segment(self):
        ref = SegmentRef(key="k", name="rsqp_never_published_g1",
                         generation=1, digest="00" * 32, payload_len=4)
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(ref)
        assert exc.value.reason == "missing"

    def test_header_layout_is_stable(self):
        # The on-wire header is a compatibility surface: 8 + 4 + 4 +
        # 8 + 8 + 32 bytes, little-endian.
        assert _HEADER.size == 64
        assert _HEADER.format == "<8sIIQQ32s"
        assert struct.calcsize(_HEADER.format) == 64


class TestQuarantineAndClose:
    def test_quarantine_unlinks(self, store):
        ref = store.publish("k", PAYLOAD)
        assert store.quarantine("k")
        assert store.ref("k") is None
        with pytest.raises(ShmIntegrityError) as exc:
            attach_artifact(ref)
        assert exc.value.reason == "missing"
        assert store.stats()["quarantines"] == 1

    def test_quarantine_then_republish_bumps_generation(self, store):
        r1 = store.publish("k", {"v": 1})
        store.quarantine("k")
        r2 = store.publish("k", {"v": 2})
        assert r2.generation == r1.generation + 1
        assert attach_artifact(r2) == {"v": 2}

    def test_quarantine_missing_key(self, store):
        assert not store.quarantine("nope")

    def test_close_unlinks_everything(self):
        store = ShmArtifactStore()
        refs = [store.publish(f"k{i}", PAYLOAD) for i in range(3)]
        assert store.segment_names()
        store.close()
        assert store.segment_names() == []
        for ref in refs:
            with pytest.raises(ShmIntegrityError):
                attach_artifact(ref)

    def test_close_is_idempotent_and_final(self):
        store = ShmArtifactStore()
        store.publish("k", PAYLOAD)
        store.close()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.publish("k2", PAYLOAD)

    def test_context_manager_closes(self):
        with ShmArtifactStore() as store:
            ref = store.publish("k", PAYLOAD)
        with pytest.raises(ShmIntegrityError):
            attach_artifact(ref)
