"""Integration tests: the simulated accelerator vs the reference solver,
plus the frequency/resource/power models."""

import numpy as np
import pytest

from repro.customization import (baseline_customization, customize_problem,
                                 parse_architecture)
from repro.hw import (FMAX_CAP_MHZ, RSQPAccelerator, estimate_resources,
                      fits_device, fmax_mhz, fpga_power_watts)
from repro.problems import (generate_control, generate_eqqp, generate_lasso,
                            generate_svm)
from repro.solver import OSQPSettings, solve


SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)


class TestAcceleratorNumerics:
    @pytest.mark.parametrize("make_problem", [
        lambda: generate_svm(10, seed=0),
        lambda: generate_control(4, horizon=5, seed=1),
        lambda: generate_lasso(8, seed=2),
        lambda: generate_eqqp(16, seed=3),
    ])
    def test_accelerator_matches_reference(self, make_problem):
        prob = make_problem()
        acc = RSQPAccelerator(prob, settings=SETTINGS)
        res = acc.run()
        assert res.converged
        ref = solve(prob, SETTINGS)
        assert ref.status.is_optimal
        # Same optimization problem, same algorithm: objectives agree.
        assert np.isclose(prob.objective(res.x), ref.info.obj_val,
                          rtol=1e-2, atol=1e-3)
        assert prob.primal_residual(res.x) < 1e-2

    def test_kkt_conditions_hold(self):
        prob = generate_svm(10, seed=4)
        res = RSQPAccelerator(prob, settings=SETTINGS).run()
        assert res.converged
        grad = prob.P.matvec(res.x) + prob.q + prob.A.rmatvec(res.y)
        assert np.abs(grad).max() < 1e-2

    def test_analytic_cycle_model_is_exact(self):
        prob = generate_control(4, horizon=4, seed=5)
        acc = RSQPAccelerator(prob, settings=SETTINGS)
        res = acc.run()
        estimate = acc.estimate_cycles(res.admm_iterations,
                                       res.pcg_iterations,
                                       rho_updates=acc.rho_updates)
        assert estimate == res.total_cycles

    def test_customized_fewer_cycles_than_baseline(self):
        prob = generate_svm(24, seed=6)
        custom = RSQPAccelerator(
            prob, customization=customize_problem(prob, 16),
            settings=SETTINGS).run()
        base = RSQPAccelerator(
            prob, customization=baseline_customization(prob, 16),
            settings=SETTINGS).run()
        assert custom.total_cycles < base.total_cycles
        # Both converge to the same problem's solution.
        assert custom.converged and base.converged
        assert np.isclose(prob.objective(custom.x), prob.objective(base.x),
                          rtol=1e-2, atol=1e-3)

    def test_solve_seconds_and_energy(self):
        prob = generate_svm(10, seed=7)
        res = RSQPAccelerator(prob, settings=SETTINGS).run()
        assert res.solve_seconds > 0
        assert np.isclose(res.energy_joules,
                          res.solve_seconds * res.power_watts)

    def test_cycle_breakdown_reported(self):
        prob = generate_svm(10, seed=8)
        res = RSQPAccelerator(prob, settings=SETTINGS).run()
        assert "SpMV" in res.stats.by_class
        assert "VecDup" in res.stats.by_class
        assert res.stats.by_class["SpMV"] > 0


class TestFrequencyModel:
    def test_table3_fmax_within_tolerance(self):
        # Paper Table 3 synthesis results; model should track within ~10%.
        rows = {
            "16{e}": 300, "16{16a1e}": 276, "32{32a4d1f}": 173,
            "16{16a2d1e}": 273, "64{64a4e1g}": 121, "32{4d1f}": 300,
            "32{32a4d2e1f}": 179, "32{4d2e1f}": 300, "32{16b4d1f}": 257,
            "64{4e1g}": 270, "64{8d4e1g}": 251,
        }
        for name, expected in rows.items():
            modeled = fmax_mhz(parse_architecture(name))
            assert abs(modeled - expected) / expected < 0.10, name

    def test_cap_at_300(self):
        assert fmax_mhz(parse_architecture("16{e}")) == FMAX_CAP_MHZ

    def test_monotone_in_routing_complexity(self):
        simple = fmax_mhz(parse_architecture("64{1g}"))
        complex_ = fmax_mhz(parse_architecture("64{64a1g}"))
        assert complex_ < simple


class TestResourceModel:
    def test_dsp_exactly_5c(self):
        for name, dsp in [("16{e}", 80), ("32{4d1f}", 160),
                          ("64{4e1g}", 320)]:
            assert estimate_resources(parse_architecture(name)).dsp == dsp

    def test_table3_ff_lut_within_tolerance(self):
        rows = {
            "16{e}": (12218, 8556),
            "16{16a1e}": (17190, 12502),
            "32{32a4d1f}": (32441, 23648),
            "64{64a4e1g}": (60202, 50405),
            "32{4d1f}": (22958, 13880),
            "64{8d4e1g}": (44403, 24245),
        }
        for name, (ff, lut) in rows.items():
            est = estimate_resources(parse_architecture(name))
            assert abs(est.ff - ff) / ff < 0.10, name
            assert abs(est.lut - lut) / lut < 0.12, name

    def test_all_table3_designs_fit_u50(self):
        for name in ["16{e}", "32{32a4d2e1f}", "64{64a4e1g}"]:
            assert fits_device(parse_architecture(name))

    def test_utilization_fractions(self):
        est = estimate_resources(parse_architecture("16{e}"))
        util = est.utilization()
        assert 0 < util["dsp"] < 1
        assert 0 < util["lut"] < 1


class TestPowerModel:
    def test_power_near_19w(self):
        # Paper: steady ~19 W across the benchmark.
        for name in ["16{e}", "32{4d1f}", "64{8d4e1g}", "64{64a4e1g}"]:
            watts = fpga_power_watts(parse_architecture(name))
            assert 18.0 <= watts <= 20.0, name

    def test_bigger_design_draws_more(self):
        small = fpga_power_watts(parse_architecture("16{e}"))
        big = fpga_power_watts(parse_architecture("64{64a4e1g}"))
        assert big > small


class TestWarmStart:
    def test_warm_start_reduces_iterations(self):
        prob = generate_svm(14, seed=9)
        cold = RSQPAccelerator(prob, settings=SETTINGS)
        cold_res = cold.run()
        assert cold_res.converged
        warm = RSQPAccelerator(prob, settings=SETTINGS)
        warm.warm_start(x=cold_res.x, y=cold_res.y)
        warm_res = warm.run()
        assert warm_res.converged
        assert warm_res.admm_iterations <= cold_res.admm_iterations
        assert warm_res.total_cycles <= cold_res.total_cycles

    def test_warm_start_same_solution(self):
        prob = generate_svm(14, seed=10)
        cold = RSQPAccelerator(prob, settings=SETTINGS)
        cold_res = cold.run()
        warm = RSQPAccelerator(prob, settings=SETTINGS)
        warm.warm_start(x=cold_res.x, y=cold_res.y)
        warm_res = warm.run()
        assert np.allclose(warm_res.x, cold_res.x, atol=1e-2)
