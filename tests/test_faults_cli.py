"""Chaos-replay CLI: SLO gates, report shape, determinism."""

import json

import numpy as np
import pytest

from repro.faults.__main__ import main

BASE = ["--requests", "8", "--structures", "2", "--scale", "0.6",
        "--eps", "1e-3", "--seed", "0"]


def run_cli(tmp_path, *extra):
    report_path = tmp_path / "chaos.json"
    with np.errstate(all="ignore"):
        code = main([*BASE, "--report", str(report_path), *extra])
    return code, json.loads(report_path.read_text())


class TestChaosReplay:
    def test_smoke_passes_slos(self, tmp_path, capsys):
        code, report = run_cli(tmp_path)
        assert code == 0
        assert report["slo"]["violations"] == []
        serving = report["serving"]
        assert serving["requests"] == 8
        assert serving["availability"] >= 0.99
        assert serving["silent_wrong"] == 0
        fleet = report["fleet"]
        assert fleet["requests"] == 8
        assert fleet["silent_wrong"] == 0
        out = capsys.readouterr().out
        assert "chaos" in out.lower()

    def test_report_is_deterministic(self, tmp_path):
        _, first = run_cli(tmp_path)
        _, second = run_cli(tmp_path)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_backends_produce_identical_chaos_reports(self, tmp_path):
        code, report = run_cli(tmp_path, "--skip-fleet",
                               "--both-backends")
        assert code == 0
        assert report["backends_identical"] is True

    def test_impossible_slo_fails_the_gate(self, tmp_path, capsys):
        code, report = run_cli(tmp_path, "--skip-fleet",
                               "--min-availability", "1.01")
        assert code == 1
        assert report["slo"]["violations"]
        assert "SLO" in capsys.readouterr().out

    def test_faults_are_visible_in_the_report(self, tmp_path):
        _, report = run_cli(tmp_path, "--skip-fleet", "--mac-rate",
                            "0.9", "--hbm-rate", "0.5", "--poisons", "0")
        serving = report["serving"]
        assert sum(serving["plan"].values()) > 0
        assert serving["faults_injected"] > 0
        assert serving["availability"] >= 0.99

    def test_zero_fault_plan_runs_clean(self, tmp_path):
        code, report = run_cli(tmp_path, "--skip-fleet",
                               "--mac-rate", "0", "--hbm-rate", "0",
                               "--cvb-rate", "0", "--poisons", "0",
                               "--stalls", "0")
        assert code == 0
        serving = report["serving"]
        assert serving["faults_injected"] == 0
        assert serving["retries"] == 0
        assert serving["degraded"] == 0
        assert serving["availability"] == 1.0
