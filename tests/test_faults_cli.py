"""Chaos-replay CLI: SLO gates, report shape, determinism."""

import json

import numpy as np
import pytest

from repro.faults.__main__ import main

BASE = ["--requests", "8", "--structures", "2", "--scale", "0.6",
        "--eps", "1e-3", "--seed", "0"]


def run_cli(tmp_path, *extra):
    report_path = tmp_path / "chaos.json"
    with np.errstate(all="ignore"):
        code = main([*BASE, "--report", str(report_path), *extra])
    return code, json.loads(report_path.read_text())


class TestChaosReplay:
    def test_smoke_passes_slos(self, tmp_path, capsys):
        code, report = run_cli(tmp_path)
        assert code == 0
        assert report["slo"]["violations"] == []
        serving = report["serving"]
        assert serving["requests"] == 8
        assert serving["availability"] >= 0.99
        assert serving["silent_wrong"] == 0
        fleet = report["fleet"]
        assert fleet["requests"] == 8
        assert fleet["silent_wrong"] == 0
        out = capsys.readouterr().out
        assert "chaos" in out.lower()

    def test_report_is_deterministic(self, tmp_path):
        _, first = run_cli(tmp_path)
        _, second = run_cli(tmp_path)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_backends_produce_identical_chaos_reports(self, tmp_path):
        code, report = run_cli(tmp_path, "--skip-fleet",
                               "--both-backends")
        assert code == 0
        assert report["backends_identical"] is True

    def test_impossible_slo_fails_the_gate(self, tmp_path, capsys):
        code, report = run_cli(tmp_path, "--skip-fleet",
                               "--min-availability", "1.01")
        assert code == 1
        assert report["slo"]["violations"]
        assert "SLO" in capsys.readouterr().out

    def test_faults_are_visible_in_the_report(self, tmp_path):
        _, report = run_cli(tmp_path, "--skip-fleet", "--mac-rate",
                            "0.9", "--hbm-rate", "0.5", "--poisons", "0")
        serving = report["serving"]
        assert sum(serving["plan"].values()) > 0
        assert serving["faults_injected"] > 0
        assert serving["availability"] >= 0.99

    def test_zero_fault_plan_runs_clean(self, tmp_path):
        code, report = run_cli(tmp_path, "--skip-fleet",
                               "--mac-rate", "0", "--hbm-rate", "0",
                               "--cvb-rate", "0", "--poisons", "0",
                               "--stalls", "0")
        assert code == 0
        serving = report["serving"]
        assert serving["faults_injected"] == 0
        assert serving["retries"] == 0
        assert serving["degraded"] == 0
        assert serving["availability"] == 1.0


class TestShardedStage:
    def test_sharded_stage_gates_and_reports(self, tmp_path):
        code, report = run_cli(
            tmp_path, "--skip-fleet", "--shards", "2",
            "--mac-rate", "0", "--hbm-rate", "0", "--cvb-rate", "0",
            "--poisons", "0", "--stalls", "0",
            "--worker-crashes", "1", "--worker-stalls", "0",
            "--shm-corrupts", "1", "--soft-timeout", "0.25",
            "--hard-timeout", "2.0")
        assert code == 0
        assert report["slo"]["violations"] == []
        sharded = report["sharded"]
        assert sharded["shards"] == 2
        assert sharded["requests"] == 8
        assert sharded["availability"] >= 0.99
        assert sharded["silent_wrong"] == 0
        assert sharded["plan"] == {"worker-crash": 1, "shm-corrupt": 1}
        # The worker-crash fault is transient (attempt 0 only): if an
        # shm checksum failure requeues the victim request first, its
        # attempt counter moves past 0 and the crash never fires, so
        # restarts alone is not a stable assertion here — the
        # deterministic SIGKILL/restart path is pinned down in
        # tests/test_serving_sharded.py. Some recovery must happen:
        assert sharded["restarts"] + sharded["requeues"] >= 1
        # The injected corruption was detected, quarantined, rebuilt.
        assert sharded["shm_corrupts_injected"] == 1
        assert sharded["shm_checksum_failures"] >= 1
        assert sharded["shm_quarantines"] >= 1

    def test_shards_off_by_default(self, tmp_path):
        _, report = run_cli(tmp_path, "--skip-fleet")
        assert "sharded" not in report
