"""Tests for parametric problem updates (OSQP's update API)."""

import numpy as np
import pytest

from repro.qp import QProblem
from repro.solver import OSQPSettings, OSQPSolver
from repro.sparse import CSRMatrix, eye

from helpers import random_dense, random_spd_dense


def make_solver(rng, **kwargs):
    n, m = 8, 10
    p = random_spd_dense(rng, n, 0.4)
    a = random_dense(rng, m, n, 0.5)
    x0 = rng.standard_normal(n)
    slack = np.abs(rng.standard_normal(m)) + 0.2
    prob = QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a), l=a @ x0 - slack,
                    u=a @ x0 + slack)
    return prob, OSQPSolver(prob, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                               max_iter=8000, **kwargs))


class TestUpdate:
    def test_update_q_changes_solution(self, rng):
        prob, solver = make_solver(rng)
        first = solver.solve()
        assert first.status.is_optimal
        new_q = rng.standard_normal(prob.n) * 3.0
        solver.update(q=new_q)
        second = solver.solve()
        assert second.status.is_optimal
        # Solving fresh with the new q gives the same answer.
        fresh = OSQPSolver(
            QProblem(P=prob.P, q=new_q, A=prob.A, l=prob.l, u=prob.u),
            OSQPSettings(eps_abs=1e-6, eps_rel=1e-6, max_iter=8000)).solve()
        np.testing.assert_allclose(second.x, fresh.x, atol=1e-3)

    def test_update_bounds(self, rng):
        prob, solver = make_solver(rng)
        solver.solve()
        tighter_u = prob.u - 0.05
        solver.update(u=tighter_u)
        result = solver.solve()
        assert result.status.is_optimal
        ax = prob.A.matvec(result.x)
        assert np.all(ax <= tighter_u + 1e-3)

    def test_update_warm_starts(self, rng):
        prob, solver = make_solver(rng)
        cold = solver.solve()
        solver.update(q=prob.q * 1.01)  # tiny perturbation
        warm = solver.solve()
        assert warm.status.is_optimal
        assert warm.info.iterations <= cold.info.iterations

    def test_update_validates_shapes(self, rng):
        prob, solver = make_solver(rng)
        with pytest.raises(ValueError):
            solver.update(q=np.zeros(prob.n + 1))
        with pytest.raises(ValueError):
            solver.update(l=np.zeros(prob.m - 1))

    def test_update_rejects_crossed_bounds(self, rng):
        prob, solver = make_solver(rng)
        with pytest.raises(ValueError):
            solver.update(l=prob.u + 1.0, u=prob.u)

    def test_update_bounds_refreshes_rho_pattern(self, rng):
        prob, solver = make_solver(rng)
        old_rho_vec = solver.rho_vec.copy()
        # Turn the first constraint into an equality.
        new_l = prob.l.copy()
        new_u = prob.u.copy()
        new_l[0] = new_u[0]
        solver.update(l=new_l, u=new_u)
        assert solver.rho_vec[0] > old_rho_vec[0]

    def test_update_works_with_ldl_backend(self, rng):
        prob, solver = make_solver(rng, linsys="ldl")
        solver.solve()
        new_l = prob.l.copy()
        new_u = prob.u.copy()
        new_l[0] = new_u[0]
        solver.update(l=new_l, u=new_u)
        result = solver.solve()
        assert result.status.is_optimal
        assert np.isclose(prob.A.matvec(result.x)[0], new_u[0], atol=1e-3)

    def test_update_infinite_bounds_preserved(self, rng):
        prob, solver = make_solver(rng)
        new_u = prob.u.copy()
        new_u[1] = np.inf
        solver.update(u=new_u)
        assert np.isposinf(solver.work.u[1])
        result = solver.solve()
        assert result.status.is_optimal


class TestTimeLimit:
    def test_time_limit_stops_early(self, rng):
        prob, _ = make_solver(rng)
        from repro.solver import SolverStatus, solve
        # Impossible tolerance + ~instant limit -> time-limit status.
        s = OSQPSettings(eps_abs=1e-14, eps_rel=0.0, max_iter=10_000_000,
                         check_termination=1, time_limit=1e-6,
                         adaptive_rho=False)
        res = solve(prob, s)
        assert res.status in (SolverStatus.TIME_LIMIT_REACHED,
                              SolverStatus.SOLVED_INACCURATE)
        assert res.info.iterations < 10_000_000

    def test_zero_time_limit_disables(self, rng):
        prob, solver = make_solver(rng)
        res = solver.solve()
        assert res.status.is_optimal

    def test_negative_time_limit_rejected(self):
        with pytest.raises(ValueError):
            OSQPSettings(time_limit=-1.0)


class TestHistory:
    def test_history_recorded_when_enabled(self, rng):
        prob, _ = make_solver(rng)
        s = OSQPSettings(eps_abs=1e-6, eps_rel=1e-6, max_iter=8000,
                         record_history=True, check_termination=10)
        res = OSQPSolver(prob, s).solve()
        assert res.status.is_optimal
        assert len(res.info.history) >= 1
        iters = [h[0] for h in res.info.history]
        assert iters == sorted(iters)
        # Residuals recorded at the last check match the info fields.
        _, pri, dua, _ = res.info.history[-1]
        assert pri == res.info.pri_res and dua == res.info.dua_res

    def test_history_off_by_default(self, rng):
        prob, solver = make_solver(rng)
        res = solver.solve()
        assert res.info.history == []

    def test_history_shows_residual_decrease(self, rng):
        prob, _ = make_solver(rng)
        s = OSQPSettings(eps_abs=1e-8, eps_rel=1e-8, max_iter=20000,
                         record_history=True, check_termination=25)
        res = OSQPSolver(prob, s).solve()
        if len(res.info.history) >= 3:
            first = res.info.history[0]
            last = res.info.history[-1]
            assert last[1] <= first[1] * 10  # no blow-up
            assert last[2] <= first[2] * 10


class TestScaledTermination:
    def test_scaled_termination_solves(self, rng):
        prob, _ = make_solver(rng)
        s = OSQPSettings(eps_abs=1e-5, eps_rel=1e-5, max_iter=8000,
                         scaled_termination=True)
        res = OSQPSolver(prob, s).solve()
        assert res.status.is_optimal
        # The returned solution is still good in the unscaled problem.
        assert prob.primal_residual(res.x) < 1e-2

    def test_matches_unscaled_solution(self, rng):
        prob, _ = make_solver(rng)
        a = OSQPSolver(prob, OSQPSettings(eps_abs=1e-7, eps_rel=1e-7,
                                          max_iter=20000)).solve()
        b = OSQPSolver(prob, OSQPSettings(eps_abs=1e-7, eps_rel=1e-7,
                                          max_iter=20000,
                                          scaled_termination=True)).solve()
        assert a.status.is_optimal and b.status.is_optimal
        np.testing.assert_allclose(a.x, b.x, atol=1e-3)
