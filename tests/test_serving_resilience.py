"""Serving resilience: retry, degrade, deadlines, poison healing."""

import time

import numpy as np
import pytest

from repro.exceptions import FaultDetectedError
from repro.faults import (EVERY_ATTEMPT, Fault, FaultPlan,
                          ResiliencePolicy, solution_ok)
from repro.problems import generate, perturb_numeric
from repro.serving import SolverService
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3)


def make_service(**kwargs):
    kwargs.setdefault("settings", SETTINGS)
    kwargs.setdefault("mode", "serial")
    kwargs.setdefault("resilience",
                      ResiliencePolicy(backoff_base_seconds=0.0))
    return SolverService(**kwargs)


@pytest.fixture(scope="module")
def problem():
    return generate("control", 4, seed=0)


class TestInjectionVisibility:
    def test_injected_faults_are_counted_and_answer_is_correct(
            self, problem):
        plan = FaultPlan(faults=(
            Fault(kind="mac-flip", request=0, op_index=3, element=2,
                  bit=40),))
        with make_service(fault_plan=plan) as service:
            result = service.solve(problem)
            assert result.converged
            assert solution_ok(problem, result.x, result.y, result.z,
                               eps_abs=SETTINGS.eps_abs,
                               eps_rel=SETTINGS.eps_rel)
            assert result.record.faults_injected == 1
            counters = service.metrics_snapshot()["counters"]
            assert counters["serving_faults_injected_total"] == 1

    def test_violent_fault_recovers_with_rollback_accounting(
            self, problem):
        plan = FaultPlan(faults=(
            Fault(kind="hbm-read", request=0, attempt=EVERY_ATTEMPT,
                  op_index=2, element=1, bit=62),))
        with np.errstate(all="ignore"), \
                make_service(fault_plan=plan) as service:
            result = service.solve(problem)
            assert result.converged
            assert result.record.rollbacks >= 1
            counters = service.metrics_snapshot()["counters"]
            assert counters["serving_fault_rollbacks_total"] >= 1

    def test_empty_plan_matches_plan_free_service_bitwise(self, problem):
        with make_service() as service:
            baseline = service.solve(problem)
        with make_service(fault_plan=FaultPlan()) as service:
            assert service.fault_plan is None      # zero-overhead path
            under_plan = service.solve(problem)
        np.testing.assert_array_equal(baseline.x, under_plan.x)
        assert (baseline.record.simulated_cycles
                == under_plan.record.simulated_cycles)


class TestRetryAndDegrade:
    def test_persistent_failure_degrades_to_reference(self, problem,
                                                      monkeypatch):
        service = make_service(
            resilience=ResiliencePolicy(max_retries=2,
                                        backoff_base_seconds=0.0))

        def always_faulty(*args, **kwargs):
            raise FaultDetectedError("persistent defect")

        with service:
            service.solve(problem)                  # warm the cache
            monkeypatch.setattr(service, "_run_accelerator",
                                always_faulty)
            result = service.solve(problem)
            assert result.backend == "reference"
            assert result.converged
            assert result.record.degraded
            assert result.record.retries == 2
            counters = service.metrics_snapshot()["counters"]
            assert counters["serving_retries_total"] == 2
            assert counters["serving_degraded_total"] == 1

    def test_transient_failure_retries_then_succeeds(self, problem,
                                                     monkeypatch):
        service = make_service()
        real = service._run_accelerator
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise FaultDetectedError("transient upset")
            return real(*args, **kwargs)

        with service:
            monkeypatch.setattr(service, "_run_accelerator", flaky)
            result = service.solve(problem)
            assert result.backend == "rsqp"
            assert result.converged
            assert not result.record.degraded
            assert result.record.retries == 1

    def test_degrade_disabled_reraises(self, problem, monkeypatch):
        service = make_service(
            resilience=ResiliencePolicy(max_retries=0, degrade=False,
                                        backoff_base_seconds=0.0))
        with service:
            service.solve(problem)
            monkeypatch.setattr(
                service, "_run_accelerator",
                lambda *a, **k: (_ for _ in ()).throw(
                    FaultDetectedError("boom")))
            with pytest.raises(FaultDetectedError):
                service.solve(problem)

    def test_kkt_recheck_rejects_silently_wrong_answers(self, problem,
                                                        monkeypatch):
        # Force the check on every request and corrupt every returned
        # solution: the service must refuse to pass it through.
        service = make_service(
            resilience=ResiliencePolicy(max_retries=1, check="always",
                                        backoff_base_seconds=0.0))
        real = service._run_accelerator

        def corrupting(*args, **kwargs):
            raw = real(*args, **kwargs)
            raw.x[:] = 1e6                        # silently wrong
            return raw

        with service:
            service.solve(problem)
            monkeypatch.setattr(service, "_run_accelerator", corrupting)
            result = service.solve(problem)
            assert result.record.degraded         # never returned as-is
            assert result.backend == "reference"
            counters = service.metrics_snapshot()["counters"]
            assert counters["serving_silent_corruption_total"] >= 1


class TestPoisonHealing:
    def test_poisoned_artifact_is_rebuilt_not_served(self, problem):
        plan = FaultPlan(faults=(
            Fault(kind="artifact-poison", request=1),))
        with make_service(fault_plan=plan) as service:
            first = service.solve(problem)          # builds the artifact
            assert first.record.faults_injected == 0
            second = service.solve(perturb_numeric(problem, seed=1))
            assert second.converged
            assert second.record.faults_injected == 1
            counters = service.metrics_snapshot()["counters"]
            assert counters["serving_verify_rejects_total"] == 1
            assert counters["serving_artifact_rebuilds_total"] == 1


class TestDeadlines:
    def test_missed_deadline_degrades_with_accounting(self, problem):
        with make_service() as service:
            service.solve(problem)                  # warm the cache
            result = service.solve(problem, deadline=0.0)
            assert result.record.deadline_missed
            assert result.record.degraded
            assert result.backend == "reference"
            snap = service.metrics_snapshot()
            assert snap["counters"]["serving_deadline_misses_total"] == 1
            assert snap["histograms"][
                "serving_deadline_miss_seconds"]["count"] == 1

    def test_policy_default_deadline_applies(self, problem):
        resilience = ResiliencePolicy(deadline_seconds=0.0,
                                      backoff_base_seconds=0.0)
        with make_service(resilience=resilience) as service:
            result = service.solve(problem)
            assert result.record.deadline_missed
            assert result.record.degraded


class TestDrainTimeout:
    def test_drain_raises_instead_of_returning_silently(self, problem):
        service = SolverService(settings=SETTINGS, mode="thread",
                                workers=1)
        try:
            original = service._handle

            def slow_handle(*args, **kwargs):
                time.sleep(0.5)
                return original(*args, **kwargs)

            service._handle = slow_handle
            service.submit(problem)
            with pytest.raises(TimeoutError, match="outstanding"):
                service.drain(timeout=0.05)
        finally:
            service._handle = original
            service.close()

    def test_drain_without_timeout_waits(self, problem):
        with SolverService(settings=SETTINGS, mode="thread",
                           workers=1) as service:
            request_id = service.submit(problem)
            service.drain()
            assert service.result(request_id).converged
