"""Structure fingerprint: stability, value-invariance, collisions."""

import numpy as np
import pytest

from repro.problems import (generate_control, generate_lasso, generate_svm,
                            perturb_numeric)
from repro.qp import QProblem
from repro.serving import fingerprint_problem, sparsity_string
from repro.sparse import CSRMatrix


def small_problem(seed=0, n=8):
    return generate_lasso(n, seed=seed)


class TestStability:
    def test_same_problem_same_key(self):
        prob = small_problem()
        assert (fingerprint_problem(prob).key
                == fingerprint_problem(prob).key)

    def test_key_is_hex_128_bit(self):
        key = fingerprint_problem(small_problem()).key
        assert len(key) == 32
        int(key, 16)  # parses as hex

    def test_rebuilt_problem_same_key(self):
        # Structurally identical problems built twice hash identically.
        a = generate_svm(10, seed=0)
        b = generate_svm(10, seed=0)
        assert fingerprint_problem(a).key == fingerprint_problem(b).key

    def test_numeric_values_do_not_enter_key(self):
        base = small_problem()
        fp = fingerprint_problem(base)
        for seed in range(5):
            variant = perturb_numeric(base, seed=seed)
            assert fingerprint_problem(variant).key == fp.key

    def test_q_l_u_do_not_enter_key(self):
        base = small_problem()
        shifted = QProblem(P=base.P, q=base.q + 1.0, A=base.A,
                           l=base.l - 1.0, u=base.u + 1.0, name="shifted")
        assert (fingerprint_problem(shifted).key
                == fingerprint_problem(base).key)

    def test_display_width_does_not_enter_key(self):
        prob = small_problem()
        fp16 = fingerprint_problem(prob, c=16)
        fp64 = fingerprint_problem(prob, c=64)
        assert fp16.key == fp64.key
        # ...while the display strings are width-bucketed (lossy): a
        # 64-nnz row encodes differently under c=16 and c=64.
        row = np.array([64])
        assert sparsity_string(row, 16) != sparsity_string(row, 64)


class TestCollisions:
    def test_different_structures_different_keys(self):
        problems = [
            generate_lasso(8, seed=0),
            generate_lasso(9, seed=0),
            generate_svm(10, seed=0),
            generate_control(4, horizon=5, seed=0),
        ]
        keys = {fingerprint_problem(p).key for p in problems}
        assert len(keys) == len(problems)

    def test_moved_nonzero_changes_key(self):
        # Same dims and nnz, one entry in a different column.
        dense = np.eye(4)
        a1 = dense.copy()
        a1[0, 1] = 1.0
        a2 = dense.copy()
        a2[0, 2] = 1.0
        p = CSRMatrix.from_dense(np.eye(4))
        bounds = (np.zeros(4), np.ones(4))
        q = np.zeros(4)
        prob1 = QProblem(P=p, q=q, A=CSRMatrix.from_dense(a1),
                         l=bounds[0], u=bounds[1])
        prob2 = QProblem(P=p, q=q, A=CSRMatrix.from_dense(a2),
                         l=bounds[0], u=bounds[1])
        assert (fingerprint_problem(prob1).key
                != fingerprint_problem(prob2).key)

    def test_dims_enter_key(self):
        a = generate_lasso(8, seed=0)
        b = generate_lasso(12, seed=0)
        assert fingerprint_problem(a).key != fingerprint_problem(b).key


class TestMetadata:
    def test_dims_and_nnz_reported(self):
        prob = small_problem()
        fp = fingerprint_problem(prob)
        assert (fp.n, fp.m) == (prob.n, prob.m)
        assert fp.nnz_p == prob.P.nnz
        assert fp.nnz_a == prob.A.nnz
        assert fp.nnz == prob.nnz

    def test_sparsity_strings_cover_all_rows(self):
        prob = small_problem()
        fp = fingerprint_problem(prob, c=16)
        assert len(fp.p_string) >= prob.n   # >= : $-chunks add letters
        assert len(fp.a_string) >= prob.m
        assert len(fp.kkt_string) >= prob.n + prob.m

    def test_kkt_string_matches_assembled_kkt(self):
        # The derived per-row counts must agree with actually forming
        # K = [[P + sigma I, A'], [A, -rho^-1 I]].
        prob = generate_svm(10, seed=3)
        n, m = prob.n, prob.m
        k = np.zeros((n + m, n + m))
        k[:n, :n] = prob.P.to_dense() + np.eye(n)  # sigma I fills diagonal
        k[:n, n:] = prob.A.to_dense().T
        k[n:, :n] = prob.A.to_dense()
        k[n:, n:] = -np.eye(m)
        row_nnz = (k != 0).sum(axis=1)
        expected = sparsity_string(row_nnz, 16)
        assert fingerprint_problem(prob, c=16).kkt_string == expected

    def test_str_is_compact(self):
        fp = fingerprint_problem(small_problem())
        text = str(fp)
        assert fp.key[:12] in text and f"n={fp.n}" in text


class TestPerturbNumeric:
    def test_preserves_structure_and_changes_values(self):
        base = small_problem(seed=1)
        variant = perturb_numeric(base, seed=7)
        assert np.array_equal(variant.P.indptr, base.P.indptr)
        assert np.array_equal(variant.P.indices, base.P.indices)
        assert np.array_equal(variant.A.indptr, base.A.indptr)
        assert np.array_equal(variant.A.indices, base.A.indices)
        assert not np.allclose(variant.A.data, base.A.data)

    def test_keeps_p_positive_semidefinite(self):
        base = small_problem(seed=2)
        variant = perturb_numeric(base, seed=3)
        eigs = np.linalg.eigvalsh(variant.P.to_dense())
        assert eigs.min() > -1e-9

    def test_keeps_bounds_ordered(self):
        base = generate_control(4, horizon=5, seed=1)
        variant = perturb_numeric(base, seed=5)
        assert np.all(variant.l <= variant.u + 1e-12)

    def test_rejects_bad_magnitude(self):
        with pytest.raises(ValueError):
            perturb_numeric(small_problem(), magnitude=0.7)
