"""FleetService end-to-end: solve correctness vs the reference solver,
match-score placement, calibrated-mode determinism, spill/shed lanes,
autoscaling, the fleet report, the replay CLI and the shared
build_artifact entry point."""

import json

import numpy as np
import pytest

from repro.customization import customize_problem
from repro.fleet import (AdmissionController, Autoscaler, FleetService,
                         LANE_NODE, LANE_SHED, LANE_SPILL)
from repro.fleet.__main__ import build_workload, main
from repro.problems import (generate_control, generate_lasso,
                            generate_svm, perturb_numeric)
from repro.serving import SolverService, build_artifact
from repro.serving.fingerprint import fingerprint_problem
from repro.solver import OSQPSettings, solve

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)


def fleet(**kwargs):
    kwargs.setdefault("settings", SETTINGS)
    kwargs.setdefault("solve_mode", "exact")
    return FleetService(**kwargs)


@pytest.fixture(scope="module")
def ctrl():
    problem = generate_control(4, horizon=5, seed=1)
    problem.name = "ctrl"
    return problem


@pytest.fixture(scope="module")
def lasso():
    problem = generate_lasso(8, seed=2)
    problem.name = "lasso"
    return problem


class TestCorrectness:
    def test_exact_solve_matches_reference(self, ctrl):
        with fleet() as flt:
            flt.commission(ctrl)
            res = flt.solve(ctrl)
        assert res.converged
        assert res.backend == "rsqp"
        assert res.record.lane == LANE_NODE
        ref = solve(ctrl, SETTINGS)
        assert np.isclose(ctrl.objective(res.x), ref.info.obj_val,
                          rtol=1e-2, atol=1e-3)

    def test_cross_architecture_solve_still_converges(self, ctrl, lasso):
        # A lasso instance on a control-customized node: worse match
        # score, correct solution.
        with fleet() as flt:
            flt.commission(ctrl)
            res = flt.solve(lasso)
        assert res.converged
        assert not res.record.matched
        assert 0.0 < res.record.eta <= 1.0
        ref = solve(lasso, SETTINGS)
        assert np.isclose(lasso.objective(res.x), ref.info.obj_val,
                          rtol=1e-2, atol=1e-3)

    def test_solve_batch_preserves_order(self, ctrl, lasso):
        with fleet() as flt:
            flt.commission(ctrl)
            results = flt.solve_batch([ctrl, lasso, ctrl])
        assert [r.record.problem_name for r in results] == \
            ["ctrl", "lasso", "ctrl"]
        assert all(r.converged for r in results)


class TestPlacement:
    def test_match_routes_to_dedicated_node(self, ctrl, lasso):
        with fleet(policy="match") as flt:
            n_ctrl = flt.commission(ctrl)
            n_lasso = flt.commission(lasso)
            r_ctrl = flt.solve(perturb_numeric(ctrl, seed=5))
            r_lasso = flt.solve(perturb_numeric(lasso, seed=6))
        assert r_ctrl.record.node_id == n_ctrl.node_id
        assert r_lasso.record.node_id == n_lasso.node_id
        assert r_ctrl.record.matched and r_lasso.record.matched

    def test_round_robin_ignores_structure(self, ctrl):
        with fleet(policy="round-robin") as flt:
            flt.commission(ctrl)
            flt.commission(ctrl)
            ids = [flt.solve(ctrl).record.node_id for _ in range(4)]
        assert ids == [0, 1, 0, 1]

    def test_simulated_queueing(self, ctrl):
        # Two same-instant arrivals on one node: the second waits for
        # the full first service in simulated time.
        with fleet() as flt:
            flt.commission(ctrl)
            first = flt.submit(ctrl, at=0.0)
            second = flt.submit(ctrl, at=0.0)
            r1, r2 = flt.result(first), flt.result(second)
        assert r1.record.queue_seconds == 0.0
        assert r2.record.queue_seconds == pytest.approx(
            r1.record.service_seconds)
        assert r2.record.latency_seconds > r1.record.latency_seconds


class TestCalibratedMode:
    def test_repeats_reuse_service_time(self, ctrl):
        with fleet(solve_mode="calibrated") as flt:
            flt.commission(ctrl)
            r1 = flt.solve(ctrl)
            r2 = flt.solve(perturb_numeric(ctrl, seed=7))
        assert not r1.record.calibrated      # first solve is numeric
        assert r2.record.calibrated          # repeat reuses its cycles
        assert r2.record.service_seconds == r1.record.service_seconds

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            FleetService(solve_mode="psychic")

    def test_replay_is_deterministic(self, ctrl, lasso):
        def run():
            with fleet(solve_mode="calibrated", seed=3) as flt:
                flt.commission(ctrl)
                flt.commission(lasso)
                stream = [perturb_numeric((ctrl, lasso)[i % 2], seed=i)
                          for i in range(10)]
                flt.replay_open(stream, rate=2000.0, seed=3)
                return flt.fleet_report()

        a, b = run(), run()
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)


class TestAdmission:
    def test_queue_depth_spills_to_reference(self, ctrl):
        adm = AdmissionController(max_queue_depth=1)
        with fleet(admission=adm) as flt:
            flt.commission(ctrl)
            ids = [flt.submit(ctrl, at=0.0) for _ in range(4)]
            results = [flt.result(i) for i in ids]
        lanes = [r.record.lane for r in results]
        assert LANE_SPILL in lanes
        spilled = [r for r in results if r.record.lane == LANE_SPILL]
        assert all(r.backend == "reference" and r.converged
                   for r in spilled)
        assert flt.fleet_report()["spilled"] == len(spilled)

    def test_rate_limit_sheds(self, ctrl):
        adm = AdmissionController(rate=1.0, burst=1.0)
        with fleet(admission=adm) as flt:
            flt.commission(ctrl)
            ids = [flt.submit(ctrl, at=0.0) for i in range(3)]
            results = [flt.result(i) for i in ids]
        shed = [r for r in results if r.record.lane == LANE_SHED]
        assert len(shed) == 2
        assert all(r.x is None and not r.converged for r in shed)
        assert all(r.record.shed_reason == "rate-limit" for r in shed)

    def test_build_delay_spills_until_online(self, ctrl):
        with fleet() as flt:
            flt.commission(ctrl, build_seconds=1.0)
            early = flt.solve(ctrl, at=0.0)     # node still building
            late = flt.solve(ctrl, at=2.0)      # node online
        assert early.record.lane == LANE_SPILL
        assert late.record.lane == LANE_NODE


class TestAutoscaling:
    def test_commissions_dedicated_node_for_mismatch_traffic(
            self, ctrl, lasso):
        scaler = Autoscaler(build_cost_cycles=1.0, build_seconds=0.0)
        with fleet(policy="match", autoscaler=scaler) as flt:
            flt.commission(ctrl)
            first = flt.solve(lasso)            # mismatched -> waste
            second = flt.solve(perturb_numeric(lasso, seed=8))
        assert not first.record.matched
        assert second.record.matched            # new node took over
        assert len(flt.builds) == 2             # initial + autoscaled
        assert flt.builds[-1]["architecture"] == str(
            flt.dedicated_architecture(lasso))

    def test_max_nodes_drains_coldest(self, ctrl, lasso):
        scaler = Autoscaler(build_cost_cycles=1.0, build_seconds=0.0,
                            max_nodes=1)
        with fleet(policy="match", autoscaler=scaler) as flt:
            flt.commission(ctrl)
            flt.solve(lasso)
            flt.solve(perturb_numeric(lasso, seed=9))
        assert len(flt.nodes) == 1              # ceiling respected
        assert len(flt.retired) == 1
        assert flt.retired[0].node_id == 0
        assert flt.fleet_report()["decommissions"]


class TestReport:
    def test_report_counts_and_percentiles(self, ctrl, lasso):
        with fleet() as flt:
            flt.commission(ctrl)
            flt.solve_batch([ctrl, lasso, ctrl, lasso])
            rep = flt.fleet_report()
        assert rep["requests"] == 4
        assert rep["completed"] == 4
        assert rep["shed"] == 0 and rep["spilled"] == 0
        assert rep["converged"] == 4
        lat = rep["latency_seconds"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert rep["eta_weighted_throughput"] > 0
        assert 0 < rep["eta"]["mean"] <= 1.0
        assert len(rep["nodes"]) == 1
        assert rep["nodes"][0]["served"] == 4
        assert 0 < rep["nodes"][0]["utilization"] <= 1.0
        assert json.dumps(rep)                  # JSON-serializable
        assert "node 0" in flt.render_report()

    def test_metrics_flow_through_registry(self, ctrl):
        with fleet() as flt:
            flt.commission(ctrl)
            flt.solve(ctrl)
            snap = flt.metrics_snapshot()
        assert snap["counters"]["fleet_requests_total"] == 1
        assert snap["counters"]["fleet_completed_total"] == 1
        assert snap["counters"]["fleet_node0_served_total"] == 1
        assert snap["histograms"]["fleet_latency_seconds"]["count"] == 1
        prom = flt.metrics.render_prometheus()
        assert "# TYPE fleet_requests_total counter" in prom

    def test_lifecycle_guards(self, ctrl):
        flt = fleet()
        flt.commission(ctrl)
        flt.close()
        with pytest.raises(RuntimeError):
            flt.submit(ctrl)
        with pytest.raises(KeyError):
            flt.result(999)


class TestCLI:
    def test_replay_smoke(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["--requests", "6", "--structures", "2",
                     "--nodes", "2", "--families", "control,lasso",
                     "--scale", "0.5", "--report-json",
                     str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "eta-weighted throughput" in out
        report = json.loads(report_path.read_text())
        assert report["policy"] == "match"
        assert report["requests"] == 6

    def test_workload_is_skewed_and_deterministic(self):
        templates, problems = build_workload(
            ["control", "lasso"], 4, 40, 1.0, 1.5, seed=0)
        assert len(templates) == 4 and len(problems) == 40
        counts = {}
        for p in problems:
            base = p.name.split("#")[0]
            counts[base] = counts.get(base, 0) + 1
        # Zipf head: the most popular template dominates.
        assert counts.get(templates[0].name, 0) > len(problems) / 3
        _, again = build_workload(
            ["control", "lasso"], 4, 40, 1.0, 1.5, seed=0)
        assert [p.name for p in problems] == [p.name for p in again]


class TestBuildArtifact:
    def test_standalone_matches_service_build(self):
        problem = generate_svm(10, seed=0)
        artifact = build_artifact(problem, 16)
        assert artifact.fingerprint == fingerprint_problem(problem, c=16)
        assert artifact.c == 16
        assert artifact.customization.problem is None   # detached
        with SolverService(settings=SETTINGS, mode="serial") as svc:
            res = svc.solve(problem)
        assert res.record.architecture == artifact.architecture_string

    def test_foreign_architecture_mode(self, ctrl, lasso):
        arch = customize_problem(ctrl, 16).architecture
        artifact = build_artifact(lasso, 16, architecture=arch)
        assert str(artifact.customization.architecture) == str(arch)
        assert artifact.fmax_mhz > 0
        assert 0 < artifact.customization.eta <= 1.0
