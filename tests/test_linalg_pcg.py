"""Tests for the reference PCG solver (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConvergenceError
from repro.linalg import (IdentityPreconditioner, JacobiPreconditioner, pcg)
from repro.sparse import CSRMatrix

from helpers import random_spd_dense


class DenseOperator:
    """Test operator wrapping a dense SPD matrix."""

    def __init__(self, a):
        self.a = np.asarray(a, dtype=float)

    def matvec(self, x):
        return self.a @ x

    def diagonal(self):
        return np.diag(self.a)


class NoDiagOperator:
    def __init__(self, a):
        self.a = a

    def matvec(self, x):
        return self.a @ x


class TestPCG:
    def test_solves_spd_system(self, rng):
        a = random_spd_dense(rng, 20, 0.3)
        b = rng.standard_normal(20)
        result = pcg(DenseOperator(a), b, eps=1e-10)
        assert result.converged
        np.testing.assert_allclose(a @ result.x, b, atol=1e-6)

    def test_zero_rhs_short_circuits(self, rng):
        a = random_spd_dense(rng, 5, 0.5)
        result = pcg(DenseOperator(a), np.zeros(5))
        assert result.converged
        assert result.iterations == 0
        np.testing.assert_allclose(result.x, 0.0)

    def test_warm_start_at_solution_needs_no_iterations(self, rng):
        a = random_spd_dense(rng, 8, 0.4)
        x_true = rng.standard_normal(8)
        b = a @ x_true
        result = pcg(DenseOperator(a), b, x0=x_true, eps=1e-8)
        assert result.converged
        assert result.iterations == 0

    def test_warm_start_converges_faster(self, rng):
        a = random_spd_dense(rng, 40, 0.2)
        x_true = rng.standard_normal(40)
        b = a @ x_true
        cold = pcg(DenseOperator(a), b, eps=1e-10)
        warm = pcg(DenseOperator(a), b,
                   x0=x_true + 1e-6 * rng.standard_normal(40), eps=1e-10)
        assert warm.iterations <= cold.iterations

    def test_identity_converges_in_one_iteration(self, rng):
        b = rng.standard_normal(10)
        result = pcg(DenseOperator(np.eye(10)), b, eps=1e-12)
        assert result.iterations == 1
        np.testing.assert_allclose(result.x, b, atol=1e-12)

    def test_jacobi_beats_identity_on_ill_scaled_system(self, rng):
        n = 30
        scales = np.logspace(0, 4, n)
        a = random_spd_dense(rng, n, 0.2)
        a = np.diag(np.sqrt(scales)) @ a @ np.diag(np.sqrt(scales))
        b = rng.standard_normal(n)
        op = DenseOperator(a)
        plain = pcg(op, b, preconditioner=IdentityPreconditioner(),
                    eps=1e-8, max_iter=5000)
        jacobi = pcg(op, b, preconditioner=JacobiPreconditioner(np.diag(a)),
                     eps=1e-8, max_iter=5000)
        assert jacobi.iterations < plain.iterations

    def test_defaults_to_identity_without_diagonal(self, rng):
        a = random_spd_dense(rng, 6, 0.5)
        b = rng.standard_normal(6)
        result = pcg(NoDiagOperator(a), b, eps=1e-10)
        assert result.converged

    def test_nonconvergence_reported(self, rng):
        a = random_spd_dense(rng, 30, 0.3)
        b = rng.standard_normal(30)
        result = pcg(DenseOperator(a), b, eps=1e-14, max_iter=1)
        assert not result.converged
        with pytest.raises(ConvergenceError):
            pcg(DenseOperator(a), b, eps=1e-14, max_iter=1,
                raise_on_fail=True)

    def test_indefinite_operator_rejected(self):
        # Positive diagonal (so Jacobi is happy) but indefinite matrix:
        # eigenvalues are 3 and -1.
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        b = np.array([1.0, -1.0])  # negative-curvature direction
        with pytest.raises(ConvergenceError):
            pcg(DenseOperator(a), b)

    def test_jacobi_requires_positive_diagonal(self):
        with pytest.raises(ValueError):
            JacobiPreconditioner([1.0, 0.0])

    def test_residual_history_is_monotone_at_convergence(self, rng):
        a = random_spd_dense(rng, 15, 0.4)
        b = rng.standard_normal(15)
        result = pcg(DenseOperator(a), b, eps=1e-10)
        assert result.residual_history[-1] <= result.residual_history[0]
        assert len(result.residual_history) == result.iterations + 1

    def test_exact_termination_in_n_iterations(self, rng):
        # CG terminates in at most n steps in exact arithmetic; allow slack.
        n = 12
        a = random_spd_dense(rng, n, 0.5)
        b = rng.standard_normal(n)
        result = pcg(DenseOperator(a), b, eps=1e-9,
                     preconditioner=IdentityPreconditioner())
        assert result.converged
        assert result.iterations <= n + 3

    @given(st.integers(2, 25), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_pcg_property(self, n, seed):
        rng = np.random.default_rng(seed)
        a = random_spd_dense(rng, n, 0.4)
        b = rng.standard_normal(n)
        result = pcg(DenseOperator(a), b, eps=1e-10, max_iter=10 * n)
        assert result.converged
        np.testing.assert_allclose(a @ result.x, b,
                                   atol=1e-5 * max(1.0, np.abs(b).max()))


class TestWithCSR:
    def test_pcg_on_sparse_normal_equations(self, rng):
        # K = A^T A + I via a CSR-backed operator.
        m, n = 40, 25
        a = CSRMatrix.from_dense(rng.standard_normal((m, n))
                                 * (rng.random((m, n)) < 0.3))

        class NormalOp:
            def matvec(self, x):
                return a.rmatvec(a.matvec(x)) + x

            def diagonal(self):
                return a.column_sq_sums() + 1.0

        b = rng.standard_normal(n)
        result = pcg(NormalOp(), b, eps=1e-10)
        assert result.converged
        dense = a.to_dense()
        np.testing.assert_allclose((dense.T @ dense + np.eye(n)) @ result.x,
                                   b, atol=1e-6)
