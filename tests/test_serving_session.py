"""SolverSession invariants and bitwise differentials.

The session contract under test:

* a session binds to one structure — same-pattern numeric updates are
  installed in place, anything structural is rejected loudly;
* ``resolve()`` on a session is **bitwise identical** (solution,
  iteration count, simulated cycle count) to a fresh
  ``SolverService.solve()`` on the same data, for both algorithms and
  both execution backends — the fast path changes cost, never bits;
* warm starts and the adapted penalty parameter carry across
  re-solves, which is what makes the path fast in iterations too;
* session traffic is accounted in the service's records and metrics.
"""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.problems import generate_lasso, generate_svm, perturb_numeric
from repro.serving import SolverService
from repro.serving.session import TIER_SESSION, updated_problem
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)


def service(**kwargs):
    kwargs.setdefault("settings", SETTINGS)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("mode", "serial")
    return SolverService(**kwargs)


def assert_same_solve(a, b):
    """Bitwise identity of two serve results (solution AND accounting)."""
    assert a.x.tobytes() == b.x.tobytes()
    assert a.y.tobytes() == b.y.tobytes()
    assert a.z.tobytes() == b.z.tobytes()
    assert a.converged == b.converged
    assert a.record.admm_iterations == b.record.admm_iterations
    assert a.record.simulated_cycles == b.record.simulated_cycles


class TestUpdatedProblem:
    def test_vector_update_keeps_matrices(self):
        base = generate_lasso(8, seed=0)
        new = updated_problem(base, q=base.q * 2.0)
        assert new.P is base.P and new.A is base.A
        assert np.array_equal(new.q, base.q * 2.0)

    def test_matrix_value_update_keeps_pattern(self):
        base = generate_lasso(8, seed=0)
        new = updated_problem(base, A_data=base.A.data * 0.5)
        assert np.array_equal(new.A.indptr, base.A.indptr)
        assert np.array_equal(new.A.indices, base.A.indices)
        assert np.array_equal(new.A.data, base.A.data * 0.5)

    def test_wrong_lengths_raise(self):
        base = generate_lasso(8, seed=0)
        with pytest.raises(ShapeError):
            updated_problem(base, q=np.ones(base.n + 1))
        with pytest.raises(ShapeError):
            updated_problem(base, P_data=np.ones(base.P.nnz + 3))

    def test_inconsistent_bounds_raise(self):
        base = generate_lasso(8, seed=0)
        with pytest.raises(ShapeError):
            updated_problem(base, l=np.full(base.m, 2.0),
                            u=np.full(base.m, -2.0))

    def test_asymmetric_p_data_raises(self):
        base = generate_lasso(8, seed=0)
        data = base.P.data.copy()
        off_diag = base.P.indices != np.repeat(
            np.arange(base.n), np.diff(base.P.indptr))
        if not off_diag.any():
            pytest.skip("P is diagonal for this generator size")
        data[np.argmax(off_diag)] += 1.0  # breaks P == P'
        with pytest.raises(ShapeError):
            updated_problem(base, P_data=data)


class TestSessionInvariants:
    def test_update_requires_an_argument(self):
        with service() as svc, svc.open_session(
                generate_svm(10, seed=0)) as sess:
            with pytest.raises(ValueError):
                sess.update()

    def test_structure_mismatch_raises(self):
        with service() as svc, svc.open_session(
                generate_svm(10, seed=0)) as sess:
            with pytest.raises(ShapeError):
                sess.update(P_data=np.ones(3))
            with pytest.raises(ShapeError):
                sess.update(q=np.ones(sess.problem.n + 1))

    def test_closed_session_refuses_work(self):
        with service() as svc:
            sess = svc.open_session(generate_svm(10, seed=0))
            sess.close()
            with pytest.raises(RuntimeError):
                sess.resolve()
            with pytest.raises(RuntimeError):
                sess.update(q=np.zeros(10))

    def test_warm_start_carries_across_resolves(self):
        base = generate_lasso(8, seed=3)
        nearby = perturb_numeric(base, seed=9)
        with service() as svc, svc.open_session(base) as sess:
            cold = sess.resolve()
            sess.update(q=nearby.q, l=nearby.l, u=nearby.u)
            warm = sess.resolve()  # auto warm start from `cold`
        assert warm.converged
        assert warm.record.admm_iterations <= cold.record.admm_iterations

    def test_adapted_rho_carries_when_enabled(self):
        base = generate_lasso(8, seed=3)
        with service() as svc:
            with svc.open_session(base, carry_state=True) as sess:
                sess.resolve()
                rho_after = sess._accelerator.rho
                sess.update(q=base.q * 1.01)
                assert sess._accelerator.rho == rho_after
            with svc.open_session(base, carry_state=False) as sess:
                sess.resolve()
                initial = SETTINGS.rho
                sess.update(q=base.q * 1.01)
                # A fresh host setup re-derives rho from the settings.
                assert sess._accelerator.settings.rho == initial

    def test_records_and_metrics_account_sessions(self):
        base = generate_svm(10, seed=1)
        with service() as svc:
            with svc.open_session(base) as sess:
                sess.resolve()
                sess.update(q=base.q * 1.1)
                sess.resolve()
            snap = svc.metrics_snapshot()
            records = svc.records()
        assert snap["counters"]["serving_session_opened_total"] == 1
        assert snap["counters"]["serving_session_updates_total"] == 1
        assert snap["counters"]["serving_session_resolves_total"] == 2
        hist = snap["histograms"][
            'serving_session_resolve_seconds{algorithm="admm"}']
        assert hist["count"] == 2
        session_records = [r for r in records if r.tier == TIER_SESSION]
        assert len(session_records) == 2
        assert all(r.backend == "rsqp" for r in session_records)


@pytest.mark.parametrize("backend", ["compiled", "interpret"])
@pytest.mark.parametrize("algorithm", ["admm", "pdqp"])
class TestSessionBitwise:
    """resolve() must equal a fresh service solve, bit for bit."""

    def test_resolve_equals_fresh_solve(self, backend, algorithm):
        base = generate_lasso(8, seed=0)
        nearby = perturb_numeric(base, seed=7)
        with service(backend=backend, algorithm=algorithm) as svc:
            sess = svc.open_session(base, carry_state=False)
            first = sess.resolve(warm_start=None)
            assert_same_solve(first, svc.solve(base))
            # In-place numeric rebind, then the same differential again.
            sess.update(q=nearby.q, l=nearby.l, u=nearby.u,
                        P_data=nearby.P.data, A_data=nearby.A.data)
            second = sess.resolve(warm_start=None)
            assert_same_solve(second, svc.solve(nearby))
            sess.close()

    def test_resolve_with_mirrored_warm_start(self, backend, algorithm):
        base = generate_lasso(8, seed=1)
        with service(backend=backend, algorithm=algorithm) as svc:
            sess = svc.open_session(base, carry_state=False)
            first = sess.resolve(warm_start=None)
            warm = (first.x.copy(), first.y.copy())
            sess.update(q=base.q * 1.05)
            bumped = updated_problem(base, q=base.q * 1.05)
            again = sess.resolve(warm_start=warm)
            assert_same_solve(again, svc.solve(bumped, warm_start=warm))
            sess.close()


class TestBackendCross:
    """Both backends produce identical session streams."""

    def test_session_stream_backend_invariant(self):
        base = generate_lasso(8, seed=2)
        streams = {}
        for backend in ("compiled", "interpret"):
            with service(backend=backend) as svc:
                with svc.open_session(base) as sess:
                    out = [sess.resolve()]
                    for seed in (5, 6):
                        nearby = perturb_numeric(base, seed=seed)
                        sess.update(q=nearby.q, l=nearby.l, u=nearby.u)
                        out.append(sess.resolve())
                streams[backend] = out
        for a, b in zip(streams["compiled"], streams["interpret"]):
            assert_same_solve(a, b)


class TestBatchSession:
    def test_lane_results_match_solo(self):
        base = generate_lasso(8, seed=0)
        lanes = [base] + [perturb_numeric(base, seed=s) for s in (1, 2)]
        with service() as svc:
            bs = svc.open_batch_session(lanes)
            results = bs.resolve_all()
            for lane_problem, lane_result in zip(lanes, results):
                solo = svc.solve(lane_problem)
                assert lane_result.x.tobytes() == solo.x.tobytes()
                assert lane_result.total_cycles == \
                    solo.record.simulated_cycles
            bs.close()

    def test_lane_update_and_warm_resolve(self):
        base = generate_lasso(8, seed=0)
        lanes = [perturb_numeric(base, seed=s) for s in (1, 2)]
        with service() as svc:
            with svc.open_batch_session(lanes) as bs:
                cold = bs.resolve_all()
                bumped = perturb_numeric(base, seed=3)
                bs.update(1, q=bumped.q, l=bumped.l, u=bumped.u)
                warm = bs.resolve_all()  # auto warm from previous lanes
        assert all(r.converged for r in cold)
        assert all(r.converged for r in warm)
        assert warm[1].admm_iterations <= cold[1].admm_iterations

    def test_mixed_structures_rejected(self):
        with service() as svc:
            with pytest.raises(ValueError):
                svc.open_batch_session([generate_lasso(8, seed=0),
                                        generate_svm(10, seed=0)])


class TestSessionResilience:
    def test_faulty_resolve_still_answers(self):
        from repro.faults import FaultPlan, ResiliencePolicy
        plan = FaultPlan.generate(seed=7, requests=64, mac_rate=0.8,
                                  hbm_rate=0.5, poisons=0, stalls=0)
        base = generate_lasso(8, seed=0)
        with service(fault_plan=plan,
                     resilience=ResiliencePolicy(
                         max_retries=3,
                         backoff_base_seconds=0.0)) as svc:
            with svc.open_session(base) as sess:
                results = [sess.resolve() for _ in range(3)]
        assert all(r.converged for r in results)
        total_faults = sum(r.record.faults_injected for r in results)
        assert total_faults >= 1  # the plan actually fired

    def test_fusion_bypass_while_injector_armed(self):
        """An armed injector must route around the fused loop (the
        interpreter-exact instrumented path) and still match the
        uninjected solve once faults stop firing."""
        from repro.faults import FaultPlan, ResiliencePolicy
        base = generate_lasso(8, seed=4)
        # A plan whose faults all target early requests: later session
        # resolves run uninjected on the same resident accelerator.
        plan = FaultPlan.generate(seed=11, requests=2, mac_rate=0.9,
                                  hbm_rate=0.0, poisons=0, stalls=0)
        with service(fault_plan=plan,
                     resilience=ResiliencePolicy(
                         max_retries=3,
                         backoff_base_seconds=0.0)) as svc:
            with svc.open_session(base, carry_state=False) as sess:
                sess.resolve()          # may be injected
                sess.update(q=base.q)   # reset numerics + rho
                clean = sess.resolve(warm_start=None)
        with service() as svc:
            fresh = svc.solve(base)
        assert_same_solve(clean, fresh)
