"""Tests for the QProblem container and scaling."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.qp import QProblem, ruiz_equilibrate
from repro.sparse import CSRMatrix, eye

from helpers import random_dense, random_spd_dense


def make_problem(rng, n=6, m=4):
    p = random_spd_dense(rng, n, 0.4)
    a = random_dense(rng, m, n, 0.5)
    return QProblem(P=CSRMatrix.from_dense(p), q=rng.standard_normal(n),
                    A=CSRMatrix.from_dense(a),
                    l=-np.abs(rng.standard_normal(m)) - 0.1,
                    u=np.abs(rng.standard_normal(m)) + 0.1)


class TestQProblem:
    def test_dimensions(self, rng):
        prob = make_problem(rng, 6, 4)
        assert prob.n == 6 and prob.m == 4
        assert prob.nnz == prob.P.nnz + prob.A.nnz

    def test_rejects_nonsymmetric_p(self, rng):
        p = CSRMatrix.from_dense([[1.0, 2.0], [0.0, 1.0]])
        a = eye(2)
        with pytest.raises(ShapeError):
            QProblem(P=p, q=np.zeros(2), A=a, l=np.zeros(2), u=np.ones(2))

    def test_rejects_crossed_bounds(self, rng):
        with pytest.raises(ShapeError):
            QProblem(P=eye(2), q=np.zeros(2), A=eye(2),
                     l=np.ones(2), u=np.zeros(2))

    def test_rejects_nan_bounds(self):
        with pytest.raises(ShapeError):
            QProblem(P=eye(1), q=[0.0], A=eye(1), l=[np.nan], u=[1.0])

    def test_rejects_shape_mismatches(self, rng):
        with pytest.raises(ShapeError):
            QProblem(P=eye(2), q=np.zeros(3), A=eye(2),
                     l=np.zeros(2), u=np.ones(2))
        with pytest.raises(ShapeError):
            QProblem(P=eye(2), q=np.zeros(2),
                     A=CSRMatrix.zeros((2, 3)), l=np.zeros(2), u=np.ones(2))
        with pytest.raises(ShapeError):
            QProblem(P=eye(2), q=np.zeros(2), A=eye(2),
                     l=np.zeros(3), u=np.ones(3))

    def test_objective(self, rng):
        prob = make_problem(rng)
        x = rng.standard_normal(prob.n)
        p = prob.P.to_dense()
        expected = 0.5 * x @ p @ x + prob.q @ x
        assert np.isclose(prob.objective(x), expected)

    def test_primal_residual_zero_inside_bounds(self, rng):
        prob = make_problem(rng)
        # x = 0 gives Ax = 0 which lies inside (l < 0 < u by construction).
        assert prob.primal_residual(np.zeros(prob.n)) == 0.0

    def test_primal_residual_detects_violation(self):
        prob = QProblem(P=eye(1), q=[0.0], A=eye(1), l=[0.0], u=[1.0])
        assert np.isclose(prob.primal_residual([2.0]), 1.0)
        assert np.isclose(prob.primal_residual([-0.5]), 0.5)

    def test_equality_mask(self):
        prob = QProblem(P=eye(2), q=np.zeros(2), A=eye(2),
                        l=[1.0, -1.0], u=[1.0, 1.0])
        np.testing.assert_array_equal(prob.equality_mask(), [True, False])

    def test_infinite_bounds_allowed(self):
        prob = QProblem(P=eye(1), q=[0.0], A=eye(1),
                        l=[-np.inf], u=[np.inf])
        assert prob.primal_residual([100.0]) == 0.0

    def test_permute_variables_preserves_objective(self, rng):
        prob = make_problem(rng)
        perm = rng.permutation(prob.n)
        permuted = prob.permute_variables(perm)
        x = rng.standard_normal(prob.n)
        assert np.isclose(permuted.objective(x[perm]), prob.objective(x))

    def test_permute_constraints_preserves_feasibility(self, rng):
        prob = make_problem(rng)
        perm = rng.permutation(prob.m)
        permuted = prob.permute_constraints(perm)
        x = rng.standard_normal(prob.n)
        assert np.isclose(permuted.primal_residual(x),
                          prob.primal_residual(x))


class TestRuizScaling:
    def test_identity_when_disabled(self, rng):
        prob = make_problem(rng)
        scaling = ruiz_equilibrate(prob, iterations=0)
        np.testing.assert_allclose(scaling.d, 1.0)
        np.testing.assert_allclose(scaling.e, 1.0)
        assert scaling.c == 1.0

    def test_scaled_matrices_are_consistent(self, rng):
        prob = make_problem(rng)
        s = ruiz_equilibrate(prob)
        # P_bar = c D P D
        p_bar = s.c * np.diag(s.d) @ prob.P.to_dense() @ np.diag(s.d)
        np.testing.assert_allclose(s.problem.P.to_dense(), p_bar, atol=1e-12)
        a_bar = np.diag(s.e) @ prob.A.to_dense() @ np.diag(s.d)
        np.testing.assert_allclose(s.problem.A.to_dense(), a_bar, atol=1e-12)
        np.testing.assert_allclose(s.problem.q, s.c * s.d * prob.q)

    def test_equilibration_improves_conditioning(self, rng):
        # Badly scaled problem: huge spread in the matrix entries.
        n = 8
        scales = np.logspace(0, 5, n)
        p = random_spd_dense(rng, n, 0.5)
        p = np.diag(scales) @ p @ np.diag(scales)
        a = random_dense(rng, 5, n, 0.6) * 1e4
        prob = QProblem(P=CSRMatrix.from_dense((p + p.T) / 2),
                        q=np.ones(n), A=CSRMatrix.from_dense(a),
                        l=-np.ones(5), u=np.ones(5))
        s = ruiz_equilibrate(prob)

        def col_norm_spread(p_mat, a_mat):
            stacked = np.vstack([np.hstack([p_mat, a_mat.T]),
                                 np.hstack([a_mat,
                                            np.zeros((a_mat.shape[0],) * 2)])])
            norms = np.abs(stacked).max(axis=0)
            return norms.max() / norms.min()

        before = col_norm_spread(prob.P.to_dense(), prob.A.to_dense())
        after = col_norm_spread(s.problem.P.to_dense(),
                                s.problem.A.to_dense())
        assert after < before
        assert after < 10.0  # equilibrated: column norms within one decade

    def test_unscale_roundtrip(self, rng):
        prob = make_problem(rng)
        s = ruiz_equilibrate(prob)
        x = rng.standard_normal(prob.n)
        y = rng.standard_normal(prob.m)
        z = rng.standard_normal(prob.m)
        np.testing.assert_allclose(s.unscale_x(s.scale_x(x)), x)
        np.testing.assert_allclose(s.unscale_y(s.scale_y(y)), y)
        np.testing.assert_allclose(s.unscale_z(s.scale_z(z)), z)

    def test_infinite_bounds_survive_scaling(self):
        prob = QProblem(P=eye(2), q=np.zeros(2), A=eye(2),
                        l=[-np.inf, 0.0], u=[1.0, np.inf])
        s = ruiz_equilibrate(prob)
        assert np.isneginf(s.problem.l[0])
        assert np.isposinf(s.problem.u[1])
        assert np.isfinite(s.problem.u[0])

    def test_scaled_problem_has_same_solution_set(self, rng):
        # x solves the scaled problem iff D^-1 x solves ... verified via
        # objective equivalence: f_bar(D^-1 x) = c * f(x) for the
        # quadratic part plus matching linear part.
        prob = make_problem(rng)
        s = ruiz_equilibrate(prob)
        x = rng.standard_normal(prob.n)
        x_bar = s.scale_x(x)
        assert np.isclose(s.problem.objective(x_bar),
                          s.c * prob.objective(x))
