"""Tests for the experiments CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_table2(self, capsys):
        assert main(["--table", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "RTX3070" in out

    def test_figure7(self, capsys):
        assert main(["--figure", "7", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "portfolio" in out

    def test_figure9_with_family_subset(self, capsys):
        assert main(["--figure", "9", "--count", "1",
                     "--families", "svm"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "svm" in out
        assert "portfolio" not in out.split("Figure 9")[1]

    def test_summary(self, capsys):
        assert main(["--summary", "--count", "1",
                     "--families", "control"]) == 0
        out = capsys.readouterr().out
        assert "customization_speedup_min" in out

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["--figure", "99"])
