"""Tests for the modeling layer (expressions, objectives, compilation)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.modeling import (Constraint, Minimize, ModelProblem, Variable,
                            between, dot, quad_form, sum_squares)
from repro.solver import OSQPSettings
from repro.sparse import CSRMatrix

from helpers import random_dense, random_spd_dense


ACCURATE = OSQPSettings(eps_abs=1e-7, eps_rel=1e-7, max_iter=20000,
                        polish=True)


class TestExpressions:
    def test_variable_is_identity_expression(self):
        x = Variable(3, name="x")
        assert x.size == 3
        assert x.variables == (x,)
        x.value = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(x.value, [1, 2, 3])

    def test_affine_algebra(self, rng):
        x = Variable(3)
        a = random_dense(rng, 2, 3, 0.8)
        expr = a @ x + np.ones(2) - 0.5 * (a @ x)
        x.value = rng.standard_normal(3)
        np.testing.assert_allclose(expr.value(),
                                   0.5 * a @ x.value + 1.0)

    def test_negation_and_subtraction(self, rng):
        x = Variable(2)
        x.value = np.array([1.0, -2.0])
        np.testing.assert_allclose((-x).value(), [-1.0, 2.0])
        np.testing.assert_allclose((x - x).value(), 0.0)
        np.testing.assert_allclose((3.0 - x).value(), [2.0, 5.0])

    def test_csr_matmul(self, rng):
        x = Variable(4)
        a = CSRMatrix.from_dense(random_dense(rng, 3, 4, 0.6))
        x.value = rng.standard_normal(4)
        np.testing.assert_allclose((a @ x).value(), a.matvec(x.value))

    def test_multi_variable_expression(self, rng):
        x, y = Variable(2), Variable(2)
        expr = x + 2.0 * y
        x.value = np.array([1.0, 1.0])
        y.value = np.array([0.5, -0.5])
        np.testing.assert_allclose(expr.value(), [2.0, 0.0])
        assert set(expr.variables) == {x, y}

    def test_shape_errors(self, rng):
        x = Variable(3)
        with pytest.raises(ShapeError):
            x + Variable(4)
        with pytest.raises(ShapeError):
            np.ones((2, 4)) @ x
        with pytest.raises(ShapeError):
            Variable(0)

    def test_comparisons_build_constraints(self):
        x = Variable(2)
        le = x <= 1.0
        ge = x >= -1.0
        eq = x == 0.5
        for con in (le, ge, eq):
            assert isinstance(con, Constraint)
        assert np.all(np.isneginf(le.lower))
        assert np.all(np.isposinf(ge.upper))
        np.testing.assert_allclose(eq.lower, eq.upper)

    def test_between(self):
        x = Variable(3)
        con = between(-1.0, x, np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(con.lower, -1.0)
        np.testing.assert_allclose(con.upper, [1.0, 2.0, 3.0])

    def test_crossed_bounds_rejected(self):
        x = Variable(2)
        with pytest.raises(ShapeError):
            between(1.0, x, 0.0)


class TestObjectives:
    def test_quad_form_validates(self, rng):
        x = Variable(3)
        p = random_spd_dense(rng, 3, 0.5)
        quad_form(x, p)  # fine
        with pytest.raises(ShapeError):
            quad_form(x, np.triu(p) + np.eye(3))  # asymmetric
        with pytest.raises(ShapeError):
            quad_form(x + x, p)  # not a bare Variable

    def test_objective_accumulation(self, rng):
        x = Variable(2)
        obj = (quad_form(x, np.eye(2)) + sum_squares(x - 1.0)
               + dot(np.ones(2), x) + 5.0)
        assert len(obj.quad_terms) == 1
        assert len(obj.square_terms) == 1
        assert len(obj.linear_terms) == 1
        assert obj.constant == 5.0

    def test_negative_weights_rejected(self):
        x = Variable(2)
        with pytest.raises(ShapeError):
            (-1.0) * sum_squares(x)

    def test_dot_wants_constant_first(self):
        x = Variable(2)
        with pytest.raises(ShapeError):
            dot(x, np.ones(2))


class TestSolve:
    def test_projection_onto_box(self, rng):
        # min ||x - t||^2 s.t. -1 <= x <= 1  -> clipped target.
        target = np.array([2.0, -3.0, 0.25])
        x = Variable(3)
        prob = ModelProblem(Minimize(sum_squares(x - target)),
                            [between(-1.0, x, 1.0)])
        res = prob.solve(ACCURATE)
        assert res.status.is_optimal
        np.testing.assert_allclose(x.value, np.clip(target, -1, 1),
                                   atol=1e-5)
        assert prob.value == pytest.approx(
            float(np.sum((np.clip(target, -1, 1) - target) ** 2)),
            abs=1e-5)

    def test_least_squares_matches_normal_equations(self, rng):
        a = random_dense(rng, 12, 5, 0.7)
        b = rng.standard_normal(12)
        x = Variable(5)
        prob = ModelProblem(Minimize(sum_squares(a @ x - b)), [])
        res = prob.solve(ACCURATE)
        assert res.status.is_optimal
        expected = np.linalg.lstsq(a, b, rcond=None)[0]
        np.testing.assert_allclose(x.value, expected, atol=1e-4)

    def test_quad_form_problem(self, rng):
        p = random_spd_dense(rng, 4, 0.5)
        q = rng.standard_normal(4)
        x = Variable(4)
        prob = ModelProblem(Minimize(0.5 * quad_form(x, p) + dot(q, x)),
                            [])
        res = prob.solve(ACCURATE)
        assert res.status.is_optimal
        np.testing.assert_allclose(x.value, np.linalg.solve(p, -q),
                                   atol=1e-4)

    def test_equality_constrained(self, rng):
        # min ||x||^2 s.t. sum x = 1 -> uniform.
        x = Variable(4)
        prob = ModelProblem(Minimize(sum_squares(x)),
                            [np.ones((1, 4)) @ x == 1.0])
        res = prob.solve(ACCURATE)
        assert res.status.is_optimal
        np.testing.assert_allclose(x.value, 0.25, atol=1e-5)

    def test_two_variables(self, rng):
        # min ||x - 1||^2 + ||y + 1||^2 s.t. x = y  ->  x = y = 0.
        x, y = Variable(2), Variable(2)
        prob = ModelProblem(
            Minimize(sum_squares(x - 1.0) + sum_squares(y + 1.0)),
            [x - y == 0.0])
        res = prob.solve(ACCURATE)
        assert res.status.is_optimal
        np.testing.assert_allclose(x.value, 0.0, atol=1e-4)
        np.testing.assert_allclose(y.value, 0.0, atol=1e-4)

    def test_markowitz_portfolio_model(self, rng):
        # The paper's portfolio story through the modeling layer.
        n = 8
        sigma = random_spd_dense(rng, n, 0.4) * 0.01
        mu = rng.standard_normal(n) * 0.03
        w = Variable(n, name="weights")
        prob = ModelProblem(
            Minimize(quad_form(w, sigma) + dot(-mu, w)),
            [np.ones((1, n)) @ w == 1.0, w >= 0.0])
        res = prob.solve(ACCURATE)
        assert res.status.is_optimal
        assert np.isclose(w.value.sum(), 1.0, atol=1e-5)
        assert np.all(w.value >= -1e-6)

    def test_compiled_qp_reaches_the_accelerator(self, rng):
        # The whole point: a modeled problem runs on simulated RSQP.
        from repro.hw import RSQPAccelerator
        x = Variable(3)
        target = np.array([0.3, -0.2, 0.9])
        prob = ModelProblem(Minimize(sum_squares(x - target)),
                            [between(-0.5, x, 0.5)])
        compiled = prob.compile()
        acc = RSQPAccelerator(compiled.qp,
                              settings=OSQPSettings(eps_abs=1e-5,
                                                    eps_rel=1e-5,
                                                    max_iter=3000))
        result = acc.run()
        assert result.converged
        compiled.scatter(result.x)
        np.testing.assert_allclose(x.value, np.clip(target, -0.5, 0.5),
                                   atol=1e-3)

    def test_no_variables_rejected(self):
        prob = ModelProblem(Minimize(5.0), [])
        with pytest.raises(ShapeError):
            prob.compile()

    def test_unconstrained_quadratic_requires_curvature(self, rng):
        # min of a purely linear objective is unbounded: dual infeasible.
        from repro.solver import SolverStatus
        x = Variable(2)
        prob = ModelProblem(Minimize(dot(np.ones(2), x)),
                            [x >= 0.0])
        res = prob.solve(OSQPSettings(max_iter=4000))
        # min 1'x s.t. x >= 0 is bounded (optimum 0); flip the sign to
        # make it unbounded.
        assert res.status.is_optimal
        prob2 = ModelProblem(Minimize(dot(-np.ones(2), x)), [x >= 0.0])
        res2 = prob2.solve(OSQPSettings(max_iter=4000))
        assert res2.status == SolverStatus.DUAL_INFEASIBLE


class TestPropertyBased:
    from hypothesis import given, settings as hyp_settings
    from hypothesis import strategies as st

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 5000))
    @hyp_settings(max_examples=30, deadline=None)
    def test_affine_evaluation_matches_numpy(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = Variable(n)
        a = rng.standard_normal((m, n))
        b = rng.standard_normal(m)
        c = rng.standard_normal()
        expr = float(c) * (a @ x) + b - (a @ x) * 0.25
        x.value = rng.standard_normal(n)
        np.testing.assert_allclose(expr.value(),
                                   (c - 0.25) * (a @ x.value) + b,
                                   atol=1e-10)

    @given(st.integers(2, 5), st.integers(0, 5000))
    @hyp_settings(max_examples=15, deadline=None)
    def test_box_projection_property(self, n, seed):
        rng = np.random.default_rng(seed)
        target = rng.standard_normal(n) * 2.0
        lo = -np.abs(rng.standard_normal(n)) - 0.1
        hi = np.abs(rng.standard_normal(n)) + 0.1
        x = Variable(n)
        prob = ModelProblem(Minimize(sum_squares(x - target)),
                            [between(lo, x, hi)])
        res = prob.solve(ACCURATE)
        assert res.status.is_optimal
        np.testing.assert_allclose(x.value, np.clip(target, lo, hi),
                                   atol=1e-4)

    @given(st.integers(0, 5000))
    @hyp_settings(max_examples=10, deadline=None)
    def test_compiled_qp_is_valid(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        x = Variable(n)
        a = rng.standard_normal((3, n))
        prob = ModelProblem(
            Minimize(sum_squares(a @ x - rng.standard_normal(3))
                     + 0.01 * sum_squares(x)),
            [x >= -10.0, x <= 10.0])
        compiled = prob.compile()
        qp = compiled.qp
        # Valid standard form: symmetric PSD P (diagonal dominance not
        # required; check eigenvalues), consistent shapes.
        eigs = np.linalg.eigvalsh(qp.P.to_dense())
        assert eigs.min() > -1e-9
        assert qp.A.shape == (qp.m, qp.n)
