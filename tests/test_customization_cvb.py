"""Tests for CVB access requests, First-Fit compression, and the MILP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.customization import (Architecture, access_requests,
                                 baseline_architecture, build_cvb,
                                 exact_min_depth, first_fit_compress,
                                 schedule)
from repro.encoding import encode_matrix
from repro.exceptions import ScheduleError
from repro.sparse import CSRMatrix

from helpers import random_dense


def schedule_matrix(dense, c, patterns=()):
    mat = CSRMatrix.from_dense(np.asarray(dense, dtype=float))
    enc = encode_matrix(mat, c)
    arch = Architecture(c, list(patterns)) if patterns \
        else baseline_architecture(c)
    return schedule(enc, arch)


class TestAccessRequests:
    def test_requests_cover_all_columns_used(self, rng):
        dense = random_dense(rng, 12, 10, 0.4)
        sched = schedule_matrix(dense, 8, ["bb", "aaaaaaaa"])
        v = access_requests(sched)
        used_cols = np.flatnonzero((dense != 0).any(axis=0))
        np.testing.assert_array_equal(np.flatnonzero(v.any(axis=1)),
                                      used_cols)

    def test_unused_columns_have_no_requests(self):
        dense = np.zeros((3, 5))
        dense[:, 1] = 1.0
        sched = schedule_matrix(dense, 4)
        v = access_requests(sched)
        assert v[1].any()
        for j in (0, 2, 3, 4):
            assert not v[j].any()

    def test_lane_mapping_follows_slots(self):
        # Two 2-nnz rows in one bb pack at C=4: row0 cols on lanes 0-1,
        # row1 cols on lanes 2-3.
        dense = np.array([[1.0, 1.0, 0.0, 0.0],
                          [0.0, 0.0, 1.0, 1.0]])
        sched = schedule_matrix(dense, 4, ["bb"])
        v = access_requests(sched)
        assert v[0, 0] and v[1, 1]
        assert v[2, 2] and v[3, 3]

    def test_shape(self, rng):
        dense = random_dense(rng, 6, 9, 0.5)
        sched = schedule_matrix(dense, 4)
        assert access_requests(sched).shape == (9, 4)


class TestFirstFit:
    def test_no_conflicts_single_row(self):
        # All elements requested on different banks -> depth 1.
        v = np.eye(4, dtype=bool)
        layout = first_fit_compress(v)
        assert layout.depth == 1
        layout.validate()

    def test_conflicting_elements_stack(self):
        # All elements on the same bank -> depth = number of elements.
        v = np.zeros((5, 4), dtype=bool)
        v[:, 2] = True
        layout = first_fit_compress(v)
        assert layout.depth == 5

    def test_unrequested_elements_unplaced(self):
        v = np.zeros((3, 4), dtype=bool)
        v[0, 0] = True
        layout = first_fit_compress(v)
        assert layout.location[0] == 0
        assert layout.location[1] == -1 and layout.location[2] == -1
        assert layout.depth == 1

    def test_ec_limits(self, rng):
        dense = random_dense(rng, 20, 16, 0.3)
        sched = schedule_matrix(dense, 8, ["bb"])
        layout = build_cvb(sched)
        assert layout.ec <= 8  # never worse than naive duplication
        assert layout.depth >= 1

    def test_duplication_map_consistency(self):
        v = np.array([[True, False, True],
                      [True, True, False]])
        layout = first_fit_compress(v)
        layout.validate()
        rows = layout.duplication_map()
        # Every (bank, element) request appears exactly once.
        writes = {(k, j) for row in rows for (k, j) in row}
        expected = {(int(k), int(j)) for j, k in zip(*np.nonzero(v.T)[::-1])} \
            if False else {(int(k), int(j))
                           for j in range(2) for k in np.flatnonzero(v[j])}
        assert writes == expected

    def test_validate_catches_conflict(self):
        v = np.zeros((2, 2), dtype=bool)
        v[0, 0] = v[1, 0] = True  # both need bank 0
        layout = first_fit_compress(v)
        # Corrupt: force both into row 0.
        layout.location[:] = 0
        layout.depth = 1
        with pytest.raises(ScheduleError):
            layout.validate()

    def test_first_fit_decreasing_not_worse_on_structured(self, rng):
        v = rng.random((30, 8)) < 0.25
        ffd = first_fit_compress(v, decreasing=True)
        ff = first_fit_compress(v, decreasing=False)
        ffd.validate()
        ff.validate()
        assert ffd.depth <= ff.depth + 2  # FFD is a good heuristic

    @given(st.integers(1, 20), st.integers(2, 8), st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_first_fit_valid_property(self, length, c, seed):
        rng = np.random.default_rng(seed)
        v = rng.random((length, c)) < 0.3
        layout = first_fit_compress(v)
        layout.validate()
        # Depth lower bound: the most loaded bank.
        lower = int(v.sum(axis=0).max())
        assert layout.depth >= lower
        assert layout.depth <= max(1, int(v.any(axis=1).sum()))


class TestExactMILP:
    def test_exact_matches_known_optimum(self):
        # Elements 0,1 conflict on bank 0; elements 2,3 free.
        v = np.array([[True, False],
                      [True, False],
                      [False, True],
                      [False, True]])
        # bank0 needs 2 rows; bank1 needs 2 rows; but (0,2) can share a
        # row and (1,3) can share -> optimal depth 2.
        assert exact_min_depth(v) == 2

    def test_exact_empty(self):
        assert exact_min_depth(np.zeros((3, 4), dtype=bool)) == 0

    def test_exact_lower_bounds_first_fit(self, rng):
        v = rng.random((7, 4)) < 0.4
        opt = exact_min_depth(v)
        ff = first_fit_compress(v)
        assert opt <= ff.depth
        # FFD is within a small factor on these tiny instances.
        assert ff.depth <= max(opt + 2, 2 * max(opt, 1))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_vs_first_fit_small_instances(self, seed):
        rng = np.random.default_rng(seed)
        v = rng.random((6, 3)) < 0.4
        opt = exact_min_depth(v)
        ff = first_fit_compress(v).depth
        assert opt <= ff <= opt + 2
