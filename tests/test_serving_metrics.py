"""Metrics primitives: exact histograms, bounded reservoir sampling,
registry defaults and the Prometheus exposition format."""

import math
import random

import numpy as np
import pytest

from repro.serving.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestExactHistogram:
    def test_exact_mode_is_default(self):
        h = Histogram("lat")
        assert h.reservoir is None
        for v in range(1000):
            h.observe(v)
        assert h.sample_size == 1000  # every observation kept
        assert h.count == 1000
        assert h.percentile(50) == pytest.approx(499.5)

    def test_summary_fields(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5

    def test_empty_summary(self):
        s = Histogram("lat").summary()
        assert s["count"] == 0
        assert s["mean"] is None
        assert math.isnan(Histogram("lat").percentile(50))


class TestReservoirHistogram:
    def test_memory_is_bounded(self):
        h = Histogram("lat", reservoir=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.sample_size == 64
        # Exact aggregates are unaffected by the sampling.
        assert h.count == 10_000
        assert h.total == sum(range(10_000))
        assert h.summary()["min"] == 0.0
        assert h.summary()["max"] == 9999.0

    def test_quantile_estimate_is_close(self):
        h = Histogram("lat", reservoir=512, seed=1)
        rng = np.random.default_rng(0)
        values = rng.exponential(1.0, size=20_000)
        for v in values:
            h.observe(v)
        exact = float(np.percentile(values, 95))
        assert h.percentile(95) == pytest.approx(exact, rel=0.2)

    def test_deterministic_for_fixed_seed(self):
        def run(seed):
            h = Histogram("lat", reservoir=32, seed=seed)
            for v in range(5000):
                h.observe(float(v))
            return h.percentile(50), h.sample_size

        assert run(7) == run(7)
        # The seed actually steers the replacement choices.
        assert run(7)[0] != run(8)[0]

    def test_sibling_histograms_sample_independently(self):
        a, b = Histogram("a", reservoir=16, seed=0), \
            Histogram("b", reservoir=16, seed=0)
        for v in range(2000):
            a.observe(float(v))
            b.observe(float(v))
        # Same seed, different names: different reservoirs.
        assert a.percentile(50) != b.percentile(50)

    def test_independent_of_global_random_state(self):
        h1 = Histogram("lat", reservoir=32, seed=3)
        random.seed(123)
        for v in range(3000):
            h1.observe(float(v))
        p1 = h1.percentile(50)
        h2 = Histogram("lat", reservoir=32, seed=3)
        random.seed(456)
        for v in range(3000):
            h2.observe(float(v))
        assert h2.percentile(50) == p1

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Histogram("lat", reservoir=0)


class TestRegistry:
    def test_default_reservoir_applies_at_creation(self):
        reg = MetricsRegistry(default_reservoir=8)
        assert reg.histogram("a").reservoir == 8
        # Explicit reservoir (including None = exact) wins.
        assert reg.histogram("b", reservoir=None).reservoir is None
        assert reg.histogram("c", reservoir=4).reservoir == 4

    def test_histogram_identity_per_name(self):
        reg = MetricsRegistry()
        assert reg.histogram("a") is reg.histogram("a")
        assert reg.counter("n") is reg.counter("n")

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3.0}
        assert snap["histograms"]["lat"]["count"] == 1


class TestPrometheusRendering:
    def test_counter_and_summary_series(self):
        reg = MetricsRegistry()
        reg.counter("requests_total").inc(5)
        h = reg.histogram("latency_seconds")
        for v in (0.1, 0.2, 0.3, 0.4):
            h.observe(v)
        text = reg.render_prometheus()
        assert "# TYPE requests_total counter\n" in text
        assert "requests_total 5\n" in text
        assert "# TYPE latency_seconds summary\n" in text
        assert 'latency_seconds{quantile="0.5"} 0.25' in text
        assert 'latency_seconds{quantile="0.95"}' in text
        assert "latency_seconds_sum 1\n" in text
        assert "latency_seconds_count 4\n" in text
        assert text.endswith("\n")

    def test_labeled_counters_share_one_type_line(self):
        reg = MetricsRegistry()
        reg.counter("flushes_total", labels={"reason": "linger"}).inc(2)
        reg.counter("flushes_total", labels={"reason": "full"}).inc(7)
        text = reg.render_prometheus()
        assert text.count("# TYPE flushes_total counter") == 1
        # Series sort by sample name: full before linger.
        assert text.index('reason="full"') < text.index('reason="linger"')
        assert 'flushes_total{reason="full"} 7\n' in text
        assert 'flushes_total{reason="linger"} 2\n' in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("odd_total",
                    labels={"k": 'a"b\\c\nd'}).inc()
        text = reg.render_prometheus()
        assert 'odd_total{k="a\\"b\\\\c\\nd"} 1\n' in text
        # The rendered line stays single-line despite the raw newline.
        for line in text.strip().splitlines():
            assert "\n" not in line

    def test_label_key_order_is_canonical(self):
        reg = MetricsRegistry()
        c1 = reg.counter("multi_total", labels={"b": "2", "a": "1"})
        c2 = reg.counter("multi_total", labels={"a": "1", "b": "2"})
        assert c1 is c2           # lookup order never forks a series
        c1.inc(3)
        text = reg.render_prometheus()
        assert 'multi_total{a="1",b="2"} 3\n' in text

    def test_empty_histogram_still_exposes_count(self):
        reg = MetricsRegistry()
        reg.histogram("idle")
        text = reg.render_prometheus()
        assert "idle_count 0" in text
        assert "quantile" not in text

    def test_every_line_is_valid_exposition(self):
        reg = MetricsRegistry(default_reservoir=16)
        reg.counter("a_total").inc()
        for v in range(100):
            reg.histogram("b_seconds").observe(v / 10.0)
        for line in reg.render_prometheus().strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # sample value parses
            assert " " not in name_part


class TestSampleNameParsing:
    def test_bare_name_round_trip(self):
        from repro.serving.metrics import parse_sample_name
        assert parse_sample_name("requests_total") == ("requests_total", {})

    def test_labeled_name_round_trip(self):
        from repro.serving.metrics import parse_sample_name
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"shard": "3", "reason": "crash"}).inc()
        (sample,) = reg.snapshot()["counters"]
        name, labels = parse_sample_name(sample)
        assert name == "x_total"
        assert labels == {"reason": "crash", "shard": "3"}

    def test_escaped_values_round_trip(self):
        from repro.serving.metrics import parse_sample_name
        reg = MetricsRegistry()
        ugly = 'a"b\\c\nd'
        reg.counter("odd_total", labels={"k": ugly}).inc()
        (sample,) = reg.snapshot()["counters"]
        name, labels = parse_sample_name(sample)
        assert (name, labels) == ("odd_total", {"k": ugly})

    def test_malformed_raises(self):
        from repro.serving.metrics import parse_sample_name
        with pytest.raises(ValueError):
            parse_sample_name('x_total{unterminated="v')


class TestMergeCounters:
    def test_merges_under_extra_labels(self):
        from repro.serving.metrics import merge_counters
        reg = MetricsRegistry()
        merge_counters(reg, {"solves_total": 4.0,
                             'flushes_total{reason="full"}': 2.0},
                       extra_labels={"shard": "1"})
        c = reg.snapshot()["counters"]
        assert c['solves_total{shard="1"}'] == 4.0
        assert c['flushes_total{reason="full",shard="1"}'] == 2.0

    def test_accumulates_across_incarnations(self):
        from repro.serving.metrics import merge_counters
        reg = MetricsRegistry()
        for _ in range(2):  # two "bye" payloads from shard restarts
            merge_counters(reg, {"solves_total": 3.0},
                           extra_labels={"shard": "0"})
        assert reg.snapshot()["counters"]['solves_total{shard="0"}'] == 6.0

    def test_zero_valued_counters_are_skipped(self):
        from repro.serving.metrics import merge_counters
        reg = MetricsRegistry()
        merge_counters(reg, {"idle_total": 0.0}, extra_labels={"shard": "2"})
        assert reg.snapshot()["counters"] == {}


class TestShardedFamilies:
    """The four sharded-serving counter families render as grouped,
    deterministically ordered labeled series."""

    def test_labeled_family_ordering(self):
        reg = MetricsRegistry()
        reg.counter("serving_shard_restarts_total",
                    labels={"shard": "1", "reason": "stall"}).inc()
        reg.counter("serving_shard_restarts_total",
                    labels={"shard": "0", "reason": "crash"}).inc(2)
        reg.counter("serving_heartbeat_misses_total",
                    labels={"shard": "0"}).inc()
        reg.counter("serving_shm_checksum_failures_total",
                    labels={"reason": "checksum"}).inc()
        reg.counter("serving_shard_requeues_total",
                    labels={"shard": "1"}).inc(3)
        text = reg.render_prometheus()
        for family in ("serving_shard_restarts_total",
                       "serving_heartbeat_misses_total",
                       "serving_shm_checksum_failures_total",
                       "serving_shard_requeues_total"):
            assert text.count(f"# TYPE {family} counter") == 1
        assert ('serving_shard_restarts_total'
                '{reason="crash",shard="0"} 2\n') in text
        # Within a family, series sort lexicographically by sample name.
        assert text.index('reason="crash",shard="0"') < \
            text.index('reason="stall",shard="1"')
