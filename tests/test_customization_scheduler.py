"""Tests for MAC structures, architecture notation, and pack scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.customization import (Architecture, MACStructure,
                                 baseline_architecture, parse_architecture,
                                 schedule)
from repro.encoding import encode_matrix
from repro.exceptions import EncodingError, ScheduleError
from repro.sparse import CSRMatrix

from helpers import random_dense


def matrix_with_row_nnz(row_nnz, width=None):
    width = width or max(max(row_nnz), 1)
    dense = np.zeros((len(row_nnz), width))
    for i, k in enumerate(row_nnz):
        dense[i, :k] = 1.0
    return CSRMatrix.from_dense(dense)


class TestMACStructure:
    def test_capacities_and_offsets(self):
        s = MACStructure(pattern="dd", c=16)
        assert s.capacities == (8, 8)
        assert s.lane_offsets == (0, 8)
        assert s.n_outputs == 2
        assert s.total_capacity == 16

    def test_heterogeneous(self):
        s = MACStructure(pattern="ca", c=8)
        assert s.capacities == (4, 1)
        assert s.lane_offsets == (0, 4)

    def test_infeasible_rejected(self):
        with pytest.raises(EncodingError):
            MACStructure(pattern="ee", c=16)  # 2 x 16 > 16
        with pytest.raises(EncodingError):
            MACStructure(pattern="", c=16)
        with pytest.raises(EncodingError):
            # With log2 buckets 'ca' needs 4 + 1 > 4 slots at C = 4
            # (the paper's toy example uses exact-count letters instead).
            MACStructure(pattern="ca", c=4)

    def test_ordering_longest_first(self):
        a = MACStructure(pattern="aaaa", c=16)
        b = MACStructure(pattern="dd", c=16)
        c = MACStructure(pattern="e", c=16)
        assert sorted([c, a, b]) == [a, b, c]


class TestArchitectureNotation:
    def test_parse_table3_names(self):
        arch = parse_architecture("16{16a1e}")
        patterns = {s.pattern for s in arch.structures}
        assert patterns == {"a" * 16, "e"}

        arch = parse_architecture("64{8d4e1g}")
        patterns = {s.pattern for s in arch.structures}
        assert patterns == {"d" * 8, "e" * 4, "g"}

    def test_parse_adds_implicit_full_structure(self):
        arch = parse_architecture("16{16a}")
        assert any(s.pattern == "e" for s in arch.structures)

    def test_roundtrip(self):
        for name in ["16{e}", "16{16a1e}", "32{32a4d2e1f}", "64{4e1g}"]:
            arch = parse_architecture(name)
            assert parse_architecture(str(arch)) == arch

    def test_heterogeneous_notation(self):
        arch = Architecture(8, ["ca"])
        text = str(arch)
        assert "," in text
        assert parse_architecture(text) == arch

    def test_malformed_rejected(self):
        with pytest.raises(EncodingError):
            parse_architecture("16[e]")
        with pytest.raises(EncodingError):
            parse_architecture("16{2Q}")

    def test_properties(self):
        arch = parse_architecture("32{32a4d1f}")
        assert arch.max_outputs == 32
        assert arch.total_outputs == 32 + 4 + 1
        assert arch.output_widths == (32, 4, 1)
        assert arch.n_structures == 3

    def test_baseline(self):
        base = baseline_architecture(16)
        assert base.n_structures == 1
        assert base.structures[0].pattern == "e"


class TestScheduler:
    def test_baseline_one_cycle_per_char(self):
        mat = matrix_with_row_nnz([4, 2, 2, 1, 1, 1, 3, 1])
        enc = encode_matrix(mat, 4)
        sched = schedule(enc, baseline_architecture(4))
        assert sched.cycles == len(enc.string)
        assert sched.ep == 4 * len(enc.string) - mat.nnz
        sched.validate()

    def test_paper_figure2_schedule(self):
        # Figure 2(e): string cbbaaaca (our log2 buckets) with S={bb, c}.
        # bb matches "bb", "aa" (dominated); schedule:
        #   c | bb | aa | ac? no: staged — bb claims (1,2) and (3,4),
        #   leaving c . . . . a c a -> singles.
        mat = matrix_with_row_nnz([4, 2, 2, 1, 1, 1, 3, 1])
        enc = encode_matrix(mat, 4)
        assert enc.string == "cbbaaaca"
        arch = Architecture(4, ["bb"])
        sched = schedule(enc, arch)
        sched.validate()
        # bb claims positions (1,2) and (3,4); leftovers c,a,c,a.
        assert sched.cycles == 6
        assert sched.ep == 4 * 6 - mat.nnz  # = 24 - 15 = 9

    def test_customization_reduces_cycles(self):
        mat = matrix_with_row_nnz([2, 2] * 20)
        enc = encode_matrix(mat, 4)
        base = schedule(enc, baseline_architecture(4))
        custom = schedule(enc, Architecture(4, ["bb"]))
        assert custom.cycles == base.cycles / 2
        assert custom.ep < base.ep

    def test_dominated_matching(self):
        # "ba" and "ab" and "aa" all map onto the bb structure.
        mat = matrix_with_row_nnz([2, 1, 1, 2, 1, 1])
        enc = encode_matrix(mat, 4)
        assert enc.string == "baabaa"
        sched = schedule(enc, Architecture(4, ["bb"]))
        assert sched.cycles == 3

    def test_longest_structure_priority(self):
        # With S = {aaaa, aa}, runs of a prefer the length-4 structure.
        mat = matrix_with_row_nnz([1] * 8)
        enc = encode_matrix(mat, 4)
        sched = schedule(enc, Architecture(4, ["aaaa", "aa"]))
        assert sched.cycles == 2
        assert all(p.structure.pattern == "aaaa" for p in sched.packs)

    def test_long_rows_use_full_chunks(self):
        mat = matrix_with_row_nnz([10, 1], width=10)
        enc = encode_matrix(mat, 4)
        assert enc.string == "$$ba"
        sched = schedule(enc, baseline_architecture(4))
        sched.validate()
        assert sched.cycles == 4
        # $ chunks have zero padding.
        assert sched.packs[0].slots[0].padding == 0

    def test_pack_lane_assignment(self):
        mat = matrix_with_row_nnz([2, 2])
        enc = encode_matrix(mat, 4)
        sched = schedule(enc, Architecture(4, ["bb"]))
        pack = sched.packs[0]
        assert [s.lane_start for s in pack.slots] == [0, 2]
        assert [s.capacity for s in pack.slots] == [2, 2]

    def test_width_mismatch_rejected(self):
        mat = matrix_with_row_nnz([2, 2])
        enc = encode_matrix(mat, 4)
        with pytest.raises(ScheduleError):
            schedule(enc, baseline_architecture(8))

    def test_stream_order_preserved(self, rng):
        dense = random_dense(rng, 30, 20, 0.3)
        mat = CSRMatrix.from_dense(dense)
        enc = encode_matrix(mat, 8)
        sched = schedule(enc, Architecture(8, ["aaaaaaaa", "bb", "cc"]))
        sched.validate()
        # Chunks appear in stream order across packs.
        ids = [id(slot.chunk) for pack in sched.packs
               for slot in pack.slots]
        expected = [id(c) for c in enc.chunks]
        assert ids == expected

    def test_tighter_single_structure_preferred_for_leftovers(self):
        mat = matrix_with_row_nnz([1])
        enc = encode_matrix(mat, 16)
        arch = Architecture(16, ["b"])
        sched = schedule(enc, arch)
        # Leftover 'a' hosted on the 2-capacity 'b' output rather than
        # the 16-wide root.
        assert sched.packs[0].structure.pattern == "b"

    @given(st.integers(1, 40), st.integers(0, 10_000),
           st.sampled_from([4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_schedule_invariants_property(self, n_rows, seed, c):
        rng = np.random.default_rng(seed)
        dense = random_dense(rng, n_rows, 2 * c, 0.3)
        mat = CSRMatrix.from_dense(dense)
        enc = encode_matrix(mat, c)
        arch = Architecture(c, ["a" * c, "bb"])
        sched = schedule(enc, arch)
        sched.validate()
        assert sched.ep >= 0
        assert sched.cycles <= len(enc.string)
        # Customized never worse than baseline.
        base = schedule(enc, baseline_architecture(c))
        assert sched.cycles <= base.cycles
