"""Ablation: cross-instance architecture reuse (the amortization premise).

The paper amortizes the 2-5 h bitstream build by reusing one customized
architecture across many instances of the same problem *family* (e.g.
120 000 portfolio backtests). This bench quantifies how much eta is lost
when an architecture customized for a mid-size instance is reused on
other sizes of the same family, versus per-instance customization.
"""

from conftest import print_rows

from repro.customization import (baseline_customization, customize_problem,
                                 evaluate_architecture)
from repro.problems import generate, suite_sizes


def test_architecture_reuse_within_family(benchmark):
    family = "portfolio"
    sizes = suite_sizes(family, count=6)
    donor_size = sizes[len(sizes) // 2]

    def evaluate():
        donor = customize_problem(generate(family, donor_size, seed=0), 16)
        rows = []
        for size in sizes:
            problem = generate(family, size, seed=0)
            reused = evaluate_architecture(problem, donor.architecture)
            own = customize_problem(problem, 16)
            base = baseline_customization(problem, 16)
            rows.append({
                "size": size,
                "eta_baseline": base.eta,
                "eta_reused": reused.eta,
                "eta_own": own.eta,
                "reuse_retention_pct": 100.0 * (reused.eta - base.eta)
                / max(own.eta - base.eta, 1e-12),
            })
        return rows

    rows = benchmark.pedantic(evaluate, iterations=1, rounds=1)
    print_rows(f"Ablation: reuse of one {family} architecture "
               f"(donor size {donor_size})", rows)
    # Reused architecture always beats the baseline...
    assert all(row["eta_reused"] >= row["eta_baseline"] - 1e-9
               for row in rows)
    # ...and is never better than per-instance customization by much
    # (the search is near-greedy-optimal on its own instance).
    assert all(row["eta_reused"] <= row["eta_own"] + 0.05 for row in rows)
    # Within the family, reuse retains the bulk of the gain — the
    # amortization story holds.
    retention = [row["reuse_retention_pct"] for row in rows]
    assert sum(retention) / len(retention) > 60.0
