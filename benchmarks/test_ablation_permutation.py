"""Ablation: problem-structure adaptation by permutation (paper §4.4).

The paper observes that free *constraint-row* reordering can lengthen
repeated runs in the sparsity string, while *variable* permutation —
forced to be symmetric to keep the KKT matrix symmetric — yields little
improvement. Both claims are measured here.
"""

from conftest import print_rows

from repro.customization import adapt_problem, customize_problem
from repro.problems import generate


def test_permutation_adaptation(benchmark):
    problem = generate("portfolio", 100, seed=0)

    def evaluate():
        rows = []
        plain = customize_problem(problem, 16)
        rows.append({"variant": "none", "eta": plain.eta,
                     "total_ep": plain.total_ep})
        rows_sorted, _, _ = adapt_problem(problem, 16,
                                          sort_constraints=True,
                                          sort_variables=False)
        by_rows = customize_problem(rows_sorted, 16)
        rows.append({"variant": "constraint-sort", "eta": by_rows.eta,
                     "total_ep": by_rows.total_ep})
        both, _, _ = adapt_problem(problem, 16, sort_constraints=True,
                                   sort_variables=True)
        by_both = customize_problem(both, 16)
        rows.append({"variant": "constraint+variable sort",
                     "eta": by_both.eta, "total_ep": by_both.total_ep})
        return rows

    rows = benchmark.pedantic(evaluate, iterations=1, rounds=1)
    print_rows("Ablation: permutation adaptation (portfolio)", rows)
    by_variant = {row["variant"]: row for row in rows}

    # Constraint sorting does not hurt the padding optimization.
    assert (by_variant["constraint-sort"]["total_ep"]
            <= by_variant["none"]["total_ep"] * 1.05)
    # Variable permutation changes little (the paper's observation):
    # within 15% of the constraint-sorted eta either way.
    eta_rows = by_variant["constraint-sort"]["eta"]
    eta_both = by_variant["constraint+variable sort"]["eta"]
    assert abs(eta_both - eta_rows) <= 0.15 * eta_rows
