"""Interpreter-vs-compiled solve throughput on the standard suite.

The compiled backend's contract is *same bits, same cycle counts,
faster wall clock*: per-solve Python dispatch (one ``isinstance`` walk
and ``stats.charge`` per instruction in the interpreter) collapses into
fused closures and generated C chunks. This benchmark measures full
accelerator solves — lowering and kernel compilation are warmed up
first and amortize across the serving-style repeat pattern — asserts
the contract held bit for bit, asserts >= 5x speedup on the
PCG-dominated cases, and writes ``BENCH_SIM.json`` at the repo root so
future PRs have a perf trajectory.

Respects ``REPRO_BENCH_COUNT`` / ``REPRO_BENCH_SCALE`` (see conftest).
"""

import json
import pathlib
import time

import numpy as np

from conftest import bench_count, bench_scale, print_rows

from repro.customization import customize_problem
from repro.hw.accelerator import RSQPAccelerator
from repro.problems import generate

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_SIM.json"

#: (family, size): the suite's small-to-mid instances. Sizes scale with
#: REPRO_BENCH_SCALE; count with REPRO_BENCH_COUNT (max 6 families).
CASES = [("control", 8), ("eqqp", 40), ("huber", 40), ("lasso", 30),
         ("portfolio", 40), ("svm", 24)]

#: Cases whose runtime is dominated by PCG inner iterations — the loop
#: the compiled backend exists to accelerate. The >= 5x floor applies
#: here; sparser-iteration cases may fall below it (see docs/PERF.md).
PCG_DOMINATED = ("control", "eqqp", "huber")

SPEEDUP_FLOOR = 5.0


def _solve(problem, cust, backend, repeats):
    acc = RSQPAccelerator(problem, customization=cust, backend=backend)
    result = acc.run()  # warm-up: lowering + C chunk compile amortized
    t0 = time.perf_counter()
    for _ in range(repeats):
        acc = RSQPAccelerator(problem, customization=cust,
                              backend=backend)
        result = acc.run()
    elapsed = (time.perf_counter() - t0) / repeats
    return result, acc.machine.stats, elapsed


def test_sim_backend_speedup(benchmark):
    count = max(1, min(bench_count(), len(CASES)))
    scale = bench_scale()
    cases = [(fam, max(4, int(size * scale)))
             for fam, size in CASES[:count]]
    # Keep every PCG-dominated family in reduced runs: the assertion
    # below is the point of the benchmark.
    covered = {fam for fam, _ in cases}
    for fam in PCG_DOMINATED:
        if fam not in covered:
            size = dict(CASES)[fam]
            cases.append((fam, max(4, int(size * scale))))

    rows = []
    for family, size in cases:
        problem = generate(family, size, seed=0)
        cust = customize_problem(problem, 16)
        ri, si, ti = _solve(problem, cust, "interpret", repeats=2)
        rc, sc, tc = _solve(problem, cust, "compiled", repeats=2)

        # The contract, not just a sanity check: same bits, same cycles.
        assert np.array_equal(ri.x, rc.x), (family, size)
        assert np.array_equal(ri.y, rc.y), (family, size)
        assert np.array_equal(ri.z, rc.z), (family, size)
        assert ri.total_cycles == rc.total_cycles, (family, size)
        assert si.by_class == sc.by_class, (family, size)

        rows.append({
            "family": family, "size": size,
            "pcg_iterations": ri.pcg_iterations,
            "interpret_ms": round(ti * 1e3, 3),
            "compiled_ms": round(tc * 1e3, 3),
            "speedup": round(ti / tc, 2),
            "pcg_dominated": family in PCG_DOMINATED,
        })

    print_rows("Simulation backends: solve throughput", rows)

    floor_rows = [r for r in rows if r["pcg_dominated"]]
    assert floor_rows, "no PCG-dominated case measured"
    for row in floor_rows:
        assert row["speedup"] >= SPEEDUP_FLOOR, row
    assert all(r["speedup"] > 1.0 for r in rows)

    # One stable number for pytest-benchmark trend lines: the hot
    # compiled solve of the first PCG-dominated case.
    family, size = floor_rows[0]["family"], floor_rows[0]["size"]
    problem = generate(family, size, seed=0)
    cust = customize_problem(problem, 16)
    RSQPAccelerator(problem, customization=cust,
                    backend="compiled").run()  # warm

    def hot_solve():
        return RSQPAccelerator(problem, customization=cust,
                               backend="compiled").run()
    benchmark(hot_solve)

    payload = {
        "speedup_floor": SPEEDUP_FLOOR,
        "pcg_dominated_families": list(PCG_DOMINATED),
        "bench_count": count,
        "bench_scale": scale,
        "cases": rows,
        "min_pcg_dominated_speedup": min(r["speedup"]
                                         for r in floor_rows),
        "geomean_speedup": round(float(np.exp(np.mean(
            [np.log(r["speedup"]) for r in rows]))), 2),
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
