"""Figure 7: number of non-zeros and decision variables in the benchmark.

Regenerates the suite-dimension scatter (nnz(P)+nnz(A) vs n per family)
and benchmarks the suite generator itself.
"""

from conftest import bench_count, bench_scale, print_rows

from repro.experiments import fig07_problem_dimensions
from repro.problems import benchmark_suite


def test_fig07_dimensions(benchmark):
    rows = benchmark(fig07_problem_dimensions, count=bench_count(),
                     scale=bench_scale())
    print_rows("Figure 7: benchmark problem dimensions", rows)
    families = {row["family"] for row in rows}
    assert len(families) == 6
    nnz = [row["nnz"] for row in rows]
    # The suite spans multiple decades of nnz, as in the paper.
    assert max(nnz) / min(nnz) > 30


def test_suite_generation_speed(benchmark):
    def generate_smallest():
        return [entry.problem.nnz
                for entry in benchmark_suite(count=1)]

    nnz = benchmark(generate_smallest)
    assert len(nnz) == 6
