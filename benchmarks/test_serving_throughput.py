"""Serving throughput: amortizing customization over repeated structure.

The deployment scenario behind the paper's amortization argument
(Sec. 1: MPC re-solves, backtesting sweeps): a service receives a
stream of QPs drawn from a handful of problem *structures* with
varying numeric data. The architecture cache should turn every repeat
into a warm solve whose setup is just a fingerprint + lookup —
this bench replays such a stream and asserts the cache economics:
hit rate >= 90% and warm setup at least 5x cheaper than cold.
"""

import numpy as np

from conftest import print_rows

from repro.problems import generate, perturb_numeric, suite_sizes
from repro.serving import SolverService
from repro.serving.service import TIER_HIT
from repro.solver import OSQPSettings

STRUCTURES = 2          # distinct problem structures...
REPEATS = 11            # ...replayed this many times each
SETTINGS = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3, max_iter=4000)


def build_workload():
    """22 solves over 2 structures: 2 cold builds + 20 warm repeats."""
    rng = np.random.default_rng(0)
    problems = []
    for index, size in enumerate(suite_sizes("control", STRUCTURES)):
        template = generate("control", size, seed=index)
        for rep in range(REPEATS):
            problems.append(template if rep == 0 else perturb_numeric(
                template, seed=int(rng.integers(2 ** 31))))
    order = rng.permutation(len(problems))
    return [problems[i] for i in order]


def test_serving_throughput_amortization(benchmark):
    problems = build_workload()
    assert len(problems) >= 20

    def replay():
        with SolverService(settings=SETTINGS, workers=2,
                           mode="thread") as service:
            # Sequential stream (submit -> result), the MPC/backtest
            # pattern; batch submission would race the first builds.
            results = [service.solve(p) for p in problems]
            return results, service.cache_stats(), service.records()

    results, stats, records = benchmark.pedantic(replay, iterations=1,
                                                 rounds=1)
    assert all(r.converged for r in results)

    cold = [r for r in records if r.tier != TIER_HIT]
    warm = [r for r in records if r.tier == TIER_HIT]
    cold_setup = float(np.mean([r.setup_seconds for r in cold]))
    warm_setup = float(np.mean([r.setup_seconds for r in warm]))
    rows = [{
        "requests": len(records),
        "structures": STRUCTURES,
        "hit_rate_pct": 100.0 * stats.hit_rate,
        "cold_setup_ms": 1e3 * cold_setup,
        "warm_setup_ms": 1e3 * warm_setup,
        "amortization_x": cold_setup / warm_setup,
    }]
    print_rows("Serving throughput: repeated-structure workload", rows)

    # The cache identifies every repeat: only the first request per
    # structure misses -> 20 hits / 22 requests.
    assert stats.hit_rate >= 0.90
    assert len(warm) == len(records) - STRUCTURES
    # Warm setup (fingerprint + lookup) amortizes the customization
    # flow by well over the required 5x.
    assert cold_setup / warm_setup >= 5.0
