"""Table 2: platform details (device catalog)."""

from conftest import print_rows

from repro.experiments import table2_platforms


def test_tab02_platforms(benchmark):
    rows = benchmark(table2_platforms)
    print_rows("Table 2: platform details", rows)
    assert [row["device"] for row in rows] == ["FPGA", "CPU", "GPU"]
    assert rows[0]["tdp_watts"] == 75.0
    assert rows[2]["peak_teraflops"] == 20.0
