"""Ablation (extension): prefix matching in the pack scheduler.

The paper's staged replacement only claims *full-length* occurrences of
a structure (plus dominated variants); runs slightly shorter than the
structure fall back to one cycle per chunk. Allowing leftover runs to
occupy a structure *prefix* (trailing segments fed zeros) can only
reduce cycles.

Two regimes are measured:

* a **fixed** architecture reused across problems (the cross-problem
  reuse scenario) — here prefix matching recovers the cycles lost to
  run lengths that are not multiples of the structure length;
* the **searched** architecture — the LZW search already adapts the
  structure length to the dominant run length, so the residual gain is
  near zero (evidence the search is doing its job).
"""

from conftest import print_rows

from repro.customization import (parse_architecture, schedule,
                                 search_architecture)
from repro.encoding import encode_matrix
from repro.problems import generate

FIXED = "16{16a1e}"  # a paper Table 3 shape, reused for every problem


def test_prefix_matching_gain(benchmark):
    cases = [("portfolio", 100), ("control", 12), ("svm", 60),
             ("huber", 40)]

    def evaluate():
        rows = []
        fixed_arch = parse_architecture(FIXED)
        for family, size in cases:
            problem = generate(family, size, seed=0)
            enc = encode_matrix(problem.A, 16)
            for label, arch in (
                    ("fixed " + FIXED, fixed_arch),
                    ("searched",
                     search_architecture([enc], 16).architecture)):
                strict = schedule(enc, arch)
                partial = schedule(enc, arch, allow_partial=True)
                strict.validate()
                partial.validate()
                rows.append({
                    "family": family,
                    "architecture": label,
                    "cycles_strict": strict.cycles,
                    "cycles_prefix": partial.cycles,
                    "gain_pct": 100.0 * (strict.cycles - partial.cycles)
                    / strict.cycles,
                })
        return rows

    rows = benchmark.pedantic(evaluate, iterations=1, rounds=1)
    print_rows("Ablation: prefix matching in the scheduler", rows)
    # Prefix matching never hurts.
    assert all(row["cycles_prefix"] <= row["cycles_strict"]
               for row in rows)
    fixed_rows = [r for r in rows if r["architecture"].startswith("fixed")]
    searched_rows = [r for r in rows if r["architecture"] == "searched"]
    # It recovers cycles when an architecture is reused cross-problem...
    assert any(row["gain_pct"] > 0.0 for row in fixed_rows)
    # ... while the searched architecture already fits the run lengths.
    assert all(row["gain_pct"] < 5.0 for row in searched_rows)
