"""Figure 9: improvement of the match score eta after customization.

Paper shape: clear improvements (up to ~0.5-0.6) on the structured
families, smallest gains on eqqp whose sparsity strings have few
repeated motifs. The benchmark measures the customization flow itself.
"""

from conftest import print_rows

from repro.customization import customize_problem
from repro.experiments import fig09_eta_improvement
from repro.problems import generate


def test_fig09_eta_improvement(suite_records, benchmark):
    prob = generate("control", 8, seed=0)
    custom = benchmark(customize_problem, prob, 16)
    assert 0.0 < custom.eta <= 1.0

    rows = fig09_eta_improvement(suite_records)
    print_rows("Figure 9: eta improvement after customization", rows)
    assert all(row["delta_eta"] >= -1e-9 for row in rows)
    # Structured families improve visibly somewhere in the suite.
    assert max(row["delta_eta"] for row in rows) > 0.15
    # eqqp benefits least on average (paper's observation).
    by_family = {}
    for row in rows:
        by_family.setdefault(row["family"], []).append(row["delta_eta"])
    means = {fam: sum(v) / len(v) for fam, v in by_family.items()}
    assert means["eqqp"] == min(means.values())
