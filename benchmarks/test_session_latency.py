"""Persistent-session re-solve latency vs per-request warm serving.

The tentpole claim of the session path: once a structure is bound, a
numeric ``update`` + ``resolve`` must cost a small fraction of even a
*warm* ``SolverService.solve()`` — the per-request path re-fingerprints,
re-checks the cache, and rebuilds the whole simulated accelerator
(machine, matrix resources, executor binding) for every solve, while
the session only refreshes numeric state on the resident machine and
re-enters the fused loop.

This benchmark drives one same-structure parametric stream (an
MPC-style sequence of perturbed instances) through both paths with
mirrored warm starts, asserts the results are **bitwise identical**
step by step (solutions, iteration counts, simulated cycles — the
fast path changes cost, never bits), asserts the session's mean
per-step latency is >= 5x lower, and writes ``BENCH_SESSION.json`` at
the repo root for the perf trajectory.

Respects ``REPRO_BENCH_COUNT`` / ``REPRO_BENCH_SCALE`` (see conftest).
"""

import json
import pathlib
import time

from conftest import bench_count, bench_scale, print_rows

from repro.problems import generate, perturb_numeric
from repro.serving import SolverService
from repro.solver import OSQPSettings

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_SESSION.json"

SETTINGS = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=3000)

#: Same-structure parametric streams (family, size); sizes scale with
#: REPRO_BENCH_SCALE, stream length with REPRO_BENCH_COUNT. Sized for
#: the session's target regime — small QPs re-solved at high rate
#: (kHz MPC, portfolio re-balancing) where per-request dispatch, not
#: iteration work, dominates the service path.
CASES = [("control", 2), ("portfolio", 4)]

SPEEDUP_FLOOR = 5.0


def _stream(family, size, steps):
    """A same-structure parametric stream with MPC-sized steps.

    ``magnitude=0.01`` models a receding-horizon / SQP-linearization
    drift of about a percent per step — the warm re-solve regime
    sessions exist for (large perturbations degenerate into cold
    solves, where iteration cost swamps any dispatch saving on both
    paths equally).
    """
    template = generate(family, size, seed=0)
    return [template] + [perturb_numeric(template, seed=s, magnitude=0.01)
                         for s in range(1, steps)]


def _service_pass(svc, problems):
    """Per-request warm path: every step pays the full request cost."""
    results, warm = [], None
    t0 = time.perf_counter()
    for prob in problems:
        res = svc.solve(prob, warm_start=warm)
        warm = (res.x, res.y)
        results.append(res)
    return results, time.perf_counter() - t0


def _session_pass(svc, problems):
    """Session path: bind once, then update + resolve per step.

    The one-time bind cost (accelerator construction, program lowering
    and binding, whole-loop fusion) is paid before the clock starts —
    that is the session contract — and the numeric state is then reset
    so the timed stream starts from the same cold-start state a fresh
    service request sees, keeping the bitwise differential honest.
    """
    results, warm = [], None
    sess = svc.open_session(problems[0], carry_state=False)
    sess.resolve(warm_start=None)
    sess.update(q=problems[0].q, l=problems[0].l, u=problems[0].u,
                P_data=problems[0].P.data, A_data=problems[0].A.data)
    t0 = time.perf_counter()
    for step, prob in enumerate(problems):
        if step:
            sess.update(q=prob.q, l=prob.l, u=prob.u,
                        P_data=prob.P.data, A_data=prob.A.data)
        res = sess.resolve(warm_start=warm)
        warm = (res.x, res.y)
        results.append(res)
    elapsed = time.perf_counter() - t0
    sess.close()
    return results, elapsed


def test_session_latency(benchmark):
    scale = bench_scale()
    steps = max(8, 4 * bench_count())
    cases = [(fam, max(2, int(size * scale)))
             for fam, size in CASES[:max(1, min(bench_count(),
                                                len(CASES)))]]

    rows = []
    with SolverService(settings=SETTINGS, workers=1,
                       mode="serial") as svc:
        for family, size in cases:
            problems = _stream(family, size, steps)
            # Warm the per-request path once: artifact build, C chunk
            # + fused loop compilation, disk JIT cache. The session
            # pass primes its own resident executor before timing.
            svc.solve(problems[0])

            service_results, service_s = _service_pass(svc, problems)
            session_results, session_s = _session_pass(svc, problems)

            # The contract: the fast path changes cost, never bits.
            for step, (a, b) in enumerate(zip(service_results,
                                              session_results)):
                assert a.x.tobytes() == b.x.tobytes(), (family, step)
                assert a.y.tobytes() == b.y.tobytes(), (family, step)
                assert a.z.tobytes() == b.z.tobytes(), (family, step)
                assert a.record.admm_iterations == \
                    b.record.admm_iterations, (family, step)
                assert a.record.simulated_cycles == \
                    b.record.simulated_cycles, (family, step)

            rows.append({
                "family": family, "size": size, "steps": steps,
                "service_ms_per_solve": round(
                    service_s / steps * 1e3, 3),
                "session_ms_per_resolve": round(
                    session_s / steps * 1e3, 3),
                "speedup_x": round(service_s / session_s, 2),
                "iterations_mean": round(sum(
                    r.record.admm_iterations
                    for r in session_results) / steps, 1),
            })

        print_rows("Session re-solve latency vs warm serving", rows)
        for row in rows:
            assert row["speedup_x"] >= SPEEDUP_FLOOR, row

        # Stable trend number: one hot update + resolve on a resident
        # session (the steady-state cost of an MPC step).
        family, size = cases[0]
        problems = _stream(family, size, steps)
        sess = svc.open_session(problems[0], carry_state=False)
        sess.resolve()
        cycle = problems[1:3]

        def hot_step(state=[0]):
            prob = cycle[state[0] % len(cycle)]
            state[0] += 1
            sess.update(q=prob.q, l=prob.l, u=prob.u)
            return sess.resolve()

        benchmark(hot_step)
        sess.close()

    payload = {
        "speedup_floor": SPEEDUP_FLOOR,
        "bench_count": bench_count(),
        "bench_scale": scale,
        "steps": steps,
        "cases": rows,
        "min_speedup_x": min(r["speedup_x"] for r in rows),
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
