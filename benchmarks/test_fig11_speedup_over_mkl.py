"""Figure 11: end-to-end solver speedup of FPGA (baseline and
customized) and GPU over the MKL CPU baseline, per family.

Paper shape: customization extends the FPGA's advantage across all but
the largest problems (up to 31.2x vs CPU, 6.9x vs GPU); the GPU only
overtakes the CPU on the biggest instances. The benchmark measures the
FPGA analytic time model evaluation.
"""

from conftest import print_rows

from repro.baselines import CPUModel, GPUModel, SolveWorkload
from repro.experiments import fig11_speedup_over_mkl


def test_fig11_speedup_over_mkl(suite_records, benchmark):
    cpu, gpu = CPUModel(), GPUModel()
    workload = SolveWorkload(n=2000, m=3000, nnz_spmv=60_000,
                             admm_iterations=150, pcg_iterations=900)

    def evaluate_models():
        return cpu.solve_seconds(workload), gpu.solve_seconds(workload)

    times = benchmark(evaluate_models)
    assert all(t > 0 for t in times)

    rows = fig11_speedup_over_mkl(suite_records)
    print_rows("Figure 11: speedup over MKL (per problem)", rows)
    # Customization never loses to the baseline architecture.
    assert all(row["customization"] >= row["no_customization"] * 0.999
               for row in rows)
    # The FPGA beats the CPU on these problem scales.
    assert max(row["customization"] for row in rows) > 3.0
    # The GPU loses to the CPU on small problems (cuOSQP's finding).
    small = [row for row in rows if row["nnz"] < 20_000]
    assert small and min(row["cuda"] for row in small) < 1.0
