"""Scaling trend: how the headline ratios move toward the paper's regime.

The default suite tops out ~30x below the paper's largest instances
(see EXPERIMENTS.md). This bench sweeps one family across a widening
size range and checks the *trends* that connect our numbers to the
paper's: the GPU closes on the CPU as nnz grows, and the FPGA's
advantage over the CPU shrinks from its small-problem peak.
"""

import os

from conftest import print_rows

from repro.experiments import run_problem
from repro.problems import generate
from repro.solver import OSQPSettings

#: Sizes beyond the default suite's top end; REPRO_BENCH_SCALE extends.
_SIZES = (60, 150, 400, 900)


def test_scaling_trend(benchmark):
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    sizes = [int(s * scale) for s in _SIZES]
    settings = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3, max_iter=2000)

    def sweep():
        rows = []
        for size in sizes:
            problem = generate("eqqp", size, seed=0)
            record = run_problem(problem, "eqqp", settings=settings)
            rows.append({
                "size": size,
                "nnz": record.nnz,
                "C": record.c,
                "fpga_vs_cpu": record.speedup_custom_vs_cpu,
                "gpu_vs_cpu": record.speedup_gpu_vs_cpu,
                "gpu_vs_fpga": record.gpu_seconds
                / record.fpga_custom_seconds,
            })
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print_rows("Scaling trend (eqqp family)", rows)

    gpu_vs_cpu = [row["gpu_vs_cpu"] for row in rows]
    # The GPU's relative standing improves monotonically with size
    # (cuOSQP's crossover sits at ~1e5 nnz, beyond this sweep's end).
    assert all(b > a for a, b in zip(gpu_vs_cpu, gpu_vs_cpu[1:]))
    # The FPGA-vs-GPU gap shrinks toward the paper's 6.9x headline.
    gvf = [row["gpu_vs_fpga"] for row in rows]
    assert gvf[-1] < gvf[0]
