"""Figure 13: power efficiency (solves per second per watt), FPGA vs GPU.

Paper shape: the FPGA runs flat at ~19 W against the GPU's 44-126 W and
achieves up to 22.7x better energy efficiency. The benchmark measures
the power-model evaluation.
"""

from conftest import print_rows

from repro.customization import parse_architecture
from repro.experiments import fig13_power_efficiency
from repro.hw import fpga_power_watts


def test_fig13_power_efficiency(suite_records, benchmark):
    arch = parse_architecture("32{4d1f}")
    watts = benchmark(fpga_power_watts, arch)
    assert 18.0 <= watts <= 20.0

    rows = fig13_power_efficiency(suite_records)
    print_rows("Figure 13: power efficiency (throughput per watt)", rows)
    # FPGA power flat near 19 W; GPU spans its 44-126 W band.
    assert all(18.0 <= row["fpga_watts"] <= 20.0 for row in rows)
    assert all(44.0 <= row["gpu_watts"] <= 126.0 for row in rows)
    ratios = [row["fpga_throughput_per_watt"]
              / row["gpu_throughput_per_watt"] for row in rows]
    # Large efficiency advantage for the FPGA (paper: up to 22.7x).
    assert max(ratios) > 10.0
    assert min(ratios) > 1.0
