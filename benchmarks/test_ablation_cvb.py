"""Ablation: CVB compression strategy (paper Problem 5).

Compares naive duplication (depth = L, E_c = C), First-Fit in element
order, First-Fit Decreasing (most-requested first — what the library
ships), and the exact MILP optimum on a tiny instance.
"""

import numpy as np

from conftest import print_rows

from repro.customization import (baseline_architecture, access_requests,
                                 exact_min_depth, first_fit_compress,
                                 schedule, search_architecture)
from repro.encoding import encode_matrix
from repro.problems import generate


def test_cvb_strategy_comparison(benchmark):
    problem = generate("control", 10, seed=0)
    enc = encode_matrix(problem.A, 16)
    arch = search_architecture([enc], 16).architecture
    sched = schedule(enc, arch)
    v = access_requests(sched)

    def compare():
        ffd = first_fit_compress(v, decreasing=True)
        ff = first_fit_compress(v, decreasing=False)
        length = v.shape[0]
        return [
            {"strategy": "naive duplication", "depth": length,
             "ec": 16.0},
            {"strategy": "first-fit", "depth": ff.depth, "ec": ff.ec},
            {"strategy": "first-fit decreasing", "depth": ffd.depth,
             "ec": ffd.ec},
        ]

    rows = benchmark.pedantic(compare, iterations=1, rounds=1)
    print_rows("Ablation: CVB compression strategies (control A matrix)",
               rows)
    depths = {row["strategy"]: row["depth"] for row in rows}
    assert depths["first-fit decreasing"] <= depths["naive duplication"]
    assert depths["first-fit"] <= depths["naive duplication"]


def test_first_fit_vs_exact_milp(benchmark):
    # Tiny instance where the exact MILP (5) is tractable: bound the
    # approximation gap the paper accepts by using First-Fit.
    rng = np.random.default_rng(0)
    v = rng.random((8, 4)) < 0.35
    opt = benchmark.pedantic(exact_min_depth, args=(v,), iterations=1,
                             rounds=1)
    ffd = first_fit_compress(v).depth
    print(f"\nexact MILP depth {opt} vs first-fit-decreasing {ffd}")
    assert opt <= ffd <= max(opt + 2, int(np.ceil(1.7 * max(opt, 1))))
