"""Ablation: datapath width C (paper §3.1).

C tunes the level of parallelism: vector operations cost length/C and
the SpMV consumes C non-zeros per cycle, so larger problems want larger
C — at 5C DSPs and growing routing cost. This sweep quantifies that on
one mid-size problem.
"""

from conftest import print_rows

from repro.customization import baseline_customization, customize_problem
from repro.hw import estimate_resources, fmax_mhz
from repro.problems import generate


def test_width_sweep(benchmark):
    problem = generate("svm", 240, seed=0)  # ~19k nnz

    def sweep():
        rows = []
        for c in (8, 16, 32, 64):
            custom = customize_problem(problem, c)
            cycles = sum(m.spmv_cycles + m.duplication_cycles
                         for m in custom.matrices.values())
            fmax = fmax_mhz(custom.architecture)
            rows.append({
                "C": c,
                "architecture": str(custom.architecture),
                "eta": custom.eta,
                "kkt_spmv_cycles": cycles,
                "spmv_us": cycles / fmax,
                "dsp": estimate_resources(custom.architecture).dsp,
            })
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print_rows("Ablation: datapath width sweep (svm)", rows)

    cycles = [row["kkt_spmv_cycles"] for row in rows]
    dsps = [row["dsp"] for row in rows]
    etas = [row["eta"] for row in rows]
    # More lanes, more DSPs (5 per lane); overall fewer cycles on a
    # problem large enough to feed the wide datapath.
    assert dsps == [40, 80, 160, 320]
    assert cycles[-1] < cycles[0]
    # Wall-clock SpMV time improves from C=8 to C=64 despite f_max cost.
    assert rows[-1]["spmv_us"] < rows[0]["spmv_us"]
    # The match score *drops* with C at fixed problem size — the
    # fragmentation effect of §3.2 that motivates customization.
    assert etas[-1] < etas[0]
