"""Process-sharded serving vs the single-process thread-pool service.

The sharded front door exists to buy *CPU parallelism* (one GIL per
worker process) and *crash isolation* on top of the same per-structure
artifact amortization. This benchmark replays one repeated-structure
workload through both deployments — a single-process
:class:`~repro.serving.SolverService` with a thread pool, and a
:class:`~repro.serving.ShardedSolverService` with 4 supervised worker
processes over the checksummed shm store — after a warmup pass that
publishes every artifact. It reports requests/second and p99 latency
for both, asserts the shard-local artifact flow never fell back to a
rebuild after warmup (publishes == structures, zero quarantines), and
writes ``BENCH_SHARD.json`` at the repo root.

The >= 2x RPS floor is asserted only when the host actually has >= 4
CPU cores — process sharding cannot beat a thread pool on a one-core
box, and the report stays honest either way.

Respects ``REPRO_BENCH_COUNT`` / ``REPRO_BENCH_SCALE`` (see conftest).
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import bench_scale, print_rows

from repro.problems import generate, perturb_numeric
from repro.serving import ShardedSolverService, SolverService
from repro.solver import OSQPSettings

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_SHARD.json"

SETTINGS = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3, max_iter=4000)

SHARDS = 4
REPEATS = 12           # numeric variants per structure, per timed pass
RPS_FLOOR = 2.0
GATE_MIN_CORES = 4

#: Two small structures: the point is scheduling overhead + process
#: parallelism, not solver arithmetic.
FAMILIES = (("svm", 10), ("lasso", 8))


def _workload(scale: float):
    problems = []
    for family, size in FAMILIES:
        template = generate(family, max(4, int(size * scale)), seed=0)
        problems.append([template] + [perturb_numeric(template, seed=s)
                                      for s in range(1, REPEATS)])
    # Interleave the structures like a real request mix.
    return [p for pair in zip(*problems) for p in pair]


def _p99(latencies) -> float:
    return float(np.percentile(np.asarray(latencies), 99))


def _timed_pass(service, problems):
    """Submit everything at once, wait for all; per-request latency is
    measured from its own submit instant."""
    submitted = []
    for problem in problems:
        submitted.append((time.perf_counter(), service.submit(problem)))
    latencies = []
    for t0, rid in submitted:
        result = service.result(rid, timeout=300.0)
        assert result.converged
        latencies.append(time.perf_counter() - t0)
    return latencies


def test_shard_throughput():
    scale = bench_scale()
    warmup = _workload(scale)[:2 * 2]  # one batch per structure
    problems = _workload(scale)

    # -- single-process thread-pool baseline ---------------------------
    with SolverService(settings=SETTINGS, workers=SHARDS,
                       mode="thread") as single:
        for problem in warmup:
            assert single.solve(problem).converged
        t0 = time.perf_counter()
        single_lat = _timed_pass(single, problems)
        single_s = time.perf_counter() - t0

    # -- sharded deployment --------------------------------------------
    with ShardedSolverService(shards=SHARDS, settings=SETTINGS,
                              heartbeat_interval=0.02,
                              soft_timeout=1.0,
                              hard_timeout=5.0) as sharded:
        for problem in warmup:
            assert sharded.solve(problem, timeout=300.0).converged
        store_after_warmup = sharded.stats()["store"]
        t0 = time.perf_counter()
        shard_lat = _timed_pass(sharded, problems)
        shard_s = time.perf_counter() - t0
        store_after_run = sharded.stats()["store"]
        supervisor = sharded.stats()["supervisor"]

    single_rps = len(problems) / single_s
    shard_rps = len(problems) / shard_s
    cores = os.cpu_count() or 1
    gated = cores >= GATE_MIN_CORES

    rows = [
        {"deployment": "single-process", "workers": SHARDS,
         "requests": len(problems),
         "rps": round(single_rps, 2),
         "p99_ms": round(_p99(single_lat) * 1e3, 2)},
        {"deployment": f"sharded x{SHARDS}", "workers": SHARDS,
         "requests": len(problems),
         "rps": round(shard_rps, 2),
         "p99_ms": round(_p99(shard_lat) * 1e3, 2)},
    ]
    print_rows(f"Sharded vs single-process throughput "
               f"({cores} cores, gate {'on' if gated else 'off'})", rows)

    # Shard-local artifact flow: after warmup every structure is
    # published exactly once and nothing was quarantined or rebuilt —
    # the timed pass served entirely from shared memory.
    assert store_after_warmup["publishes"] == len(FAMILIES)
    assert store_after_run["publishes"] == len(FAMILIES)
    assert store_after_run["quarantines"] == 0
    assert sum(supervisor["restarts"]) == 0

    if gated:
        assert shard_rps >= RPS_FLOOR * single_rps, (
            f"sharded {shard_rps:.2f} rps < {RPS_FLOOR}x single-process "
            f"{single_rps:.2f} rps on a {cores}-core host")

    REPORT_PATH.write_text(json.dumps({
        "shards": SHARDS,
        "requests": len(problems),
        "structures": len(FAMILIES),
        "cpu_cores": cores,
        "rps_gate_applied": gated,
        "rps_floor_x": RPS_FLOOR,
        "single_process": {"rps": round(single_rps, 2),
                           "p99_ms": round(_p99(single_lat) * 1e3, 2),
                           "wall_s": round(single_s, 3)},
        "sharded": {"rps": round(shard_rps, 2),
                    "p99_ms": round(_p99(shard_lat) * 1e3, 2),
                    "wall_s": round(shard_s, 3)},
        "speedup_x": round(shard_rps / single_rps, 2),
        "publishes_after_run": store_after_run["publishes"],
        "quarantines": store_after_run["quarantines"],
        "restarts": sum(supervisor["restarts"]),
        "bench_scale": scale,
    }, indent=2, sort_keys=True))
