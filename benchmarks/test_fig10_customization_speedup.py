"""Figure 10: end-to-end solver speedup from problem-specific
customization (paper: 1.4x to 7.0x, smallest on eqqp).

Our suite is scaled down ~30x from the paper's largest instances, which
compresses the ratio (see EXPERIMENTS.md); the ordering and the
greater-than-one property are asserted. The benchmark measures the pack
scheduler, the inner kernel of the customization.
"""

from conftest import print_rows

from repro.customization import baseline_architecture, schedule
from repro.encoding import encode_matrix
from repro.experiments import fig10_customization_speedup
from repro.problems import generate


def test_fig10_customization_speedup(suite_records, benchmark):
    prob = generate("portfolio", 120, seed=0)
    enc = encode_matrix(prob.A, 16)
    arch = baseline_architecture(16)
    sched = benchmark(schedule, enc, arch)
    assert sched.ep >= 0

    rows = fig10_customization_speedup(suite_records)
    print_rows("Figure 10: solver speedup from customization", rows)
    speedups = [row["speedup"] for row in rows]
    assert all(s >= 1.0 for s in speedups)
    assert max(s for s in speedups) > 1.3
    # eqqp gains least (paper's observation).
    by_family = {}
    for row in rows:
        by_family.setdefault(row["family"], []).append(row["speedup"])
    means = {fam: sum(v) / len(v) for fam, v in by_family.items()}
    assert means["eqqp"] == min(means.values())
