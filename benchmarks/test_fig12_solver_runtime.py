"""Figure 12: absolute solver run time on CPU, GPU and the customized
FPGA per family (lower is better).

Paper shape: FPGA lowest across small/mid sizes; CPU competitive only
on tiny problems; GPU pays a per-iteration floor. The benchmark
measures a full simulated accelerator run (cycle-accurate machine).
"""

from conftest import print_rows

from repro.experiments import fig12_solver_runtime
from repro.hw import RSQPAccelerator
from repro.problems import generate
from repro.solver import OSQPSettings


def test_fig12_solver_runtime(suite_records, benchmark):
    prob = generate("svm", 10, seed=0)
    acc = RSQPAccelerator(prob, settings=OSQPSettings(max_iter=2000))

    def run_accelerator():
        # Fresh state per round: re-download then execute.
        acc.machine.vb.clear()
        acc.machine.cvb.clear()
        acc.machine.stats.total_cycles = 0
        acc._download()
        return acc.run()

    result = benchmark(run_accelerator)
    assert result.converged

    rows = fig12_solver_runtime(suite_records)
    print_rows("Figure 12: solver run time (seconds)", rows)
    # FPGA-with-customization is the fastest backend on this suite.
    faster = [row for row in rows
              if row["customization_s"] < row["mkl_s"]
              and row["customization_s"] < row["cuda_s"]]
    assert len(faster) >= 0.8 * len(rows)
