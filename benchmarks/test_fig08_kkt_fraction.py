"""Figure 8: percentage of CPU solver time spent solving the KKT system.

The paper reports > 95 % for most problems, motivating the PCG
acceleration. The benchmark measures the reference solve that produces
the iteration counts behind the split.
"""

from conftest import print_rows

from repro.experiments import fig08_kkt_fraction
from repro.problems import generate
from repro.solver import OSQPSettings, OSQPSolver


def test_fig08_kkt_fraction(suite_records, benchmark):
    prob = generate("svm", 40, seed=0)

    def reference_solve():
        return OSQPSolver(prob, OSQPSettings(max_iter=2000)).solve()

    result = benchmark(reference_solve)
    assert result.status.is_optimal

    rows = fig08_kkt_fraction(suite_records)
    print_rows("Figure 8: % CPU solver time in the KKT solve", rows)
    # Shape check: the KKT solve dominates for the bulk of the suite.
    dominated = [row for row in rows if row["kkt_percent"] > 85.0]
    assert len(dominated) >= len(rows) * 0.6
