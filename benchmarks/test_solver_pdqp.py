"""PDQP vs ADMM accelerator cycles, and the auto-selection gate.

Two claims are asserted, both on simulated accelerator cycles (the
platform-independent cost both algorithms are lowered to):

1. On the large-scale structured subset — where ADMM's inner PCG
   sweeps run to thousands of iterations per solve — the restarted
   PDHG pipeline (``repro.hw.pdqp``) beats the ADMM pipeline outright
   (>= ``PDQP_SPEEDUP_FLOOR`` per case, >= ``PDQP_GEOMEAN_FLOOR``
   geomean).
2. The ``algorithm="auto"`` structural policy
   (:func:`repro.solver.choose_algorithm`) is never materially worse
   than always-ADMM: cycle geomean of auto's picks over the whole case
   table stays within ``AUTO_TOLERANCE`` of the always-ADMM policy.

Writes ``BENCH_PDQP.json`` at the repo root so future PRs have a
trajectory. Respects ``REPRO_BENCH_COUNT`` / ``REPRO_BENCH_SCALE``.
"""

import json
import pathlib

import numpy as np

from conftest import bench_count, bench_scale, print_rows

from repro.customization import customize_problem
from repro.hw.accelerator import RSQPAccelerator
from repro.hw.pdqp import PDQPAccelerator
from repro.problems import generate
from repro.qp import QProblem
from repro.solver import choose_algorithm
from repro.sparse import CSRMatrix

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_PDQP.json"

#: Per-case and geomean floors on admm_cycles / pdqp_cycles over the
#: cases auto hands to PDQP (measured headroom ~1.7-15x; see the data
#: table in docs/SOLVERS.md).
PDQP_SPEEDUP_FLOOR = 1.2
PDQP_GEOMEAN_FLOOR = 2.0
#: Auto may cost at most this factor of always-ADMM (cycle geomean).
AUTO_TOLERANCE = 1.10


def _ill_scaled_box_qp(n, cond, seed=0):
    """Separable QP with an extreme diagonal spread: the structure the
    conditioning gate keeps on ADMM (PCG sees a diagonal system; PDHG
    step sizes collapse to ~1/cond)."""
    rng = np.random.default_rng(seed)
    d = np.logspace(0.0, np.log10(cond), n)
    rng.shuffle(d)
    q = rng.standard_normal(n) * np.sqrt(d)
    return QProblem(P=CSRMatrix.from_dense(np.diag(d)), q=q,
                    A=CSRMatrix.from_dense(np.eye(n)),
                    l=-np.ones(n), u=np.ones(n),
                    name=f"illscaled-{n}")


#: (label, problem factory, the algorithm auto must pick). The first
#: three are the large-scale structured subset claim 1 is about.
def _cases(scale):
    def fam(family, size):
        return generate(family, max(4, int(size * scale)), seed=0)

    return [
        ("lasso-60", fam("lasso", 60), "pdqp"),
        ("huber-60", fam("huber", 60), "pdqp"),
        ("svm-48", fam("svm", 48), "pdqp"),
        ("portfolio-40", fam("portfolio", 40), "admm"),   # small
        ("eqqp-40", fam("eqqp", 40), "admm"),             # small
        ("illscaled-160", _ill_scaled_box_qp(160, 1e8), "admm"),
    ]


def test_pdqp_vs_admm_cycles_and_auto_selection():
    scale = bench_scale()
    cases = _cases(scale)
    # REPRO_BENCH_COUNT trims the table but never below the subset the
    # assertions are about (3 pdqp-favored + 1 admm-favored).
    keep = max(4, min(bench_count() + 3, len(cases)))
    cases = cases[:3] + cases[3:][:keep - 3]

    rows = []
    for label, problem, expected in cases:
        cust = customize_problem(problem, 16)
        admm = RSQPAccelerator(problem, customization=cust).run()
        pdqp = PDQPAccelerator(problem, customization=cust).run()
        assert admm.converged, label
        picked = choose_algorithm(problem)
        assert picked == expected, (label, picked, expected)
        auto_cycles = (pdqp if picked == "pdqp" else admm).total_cycles
        rows.append({
            "case": label,
            "n": problem.n, "m": problem.m, "nnz": problem.nnz,
            "admm_cycles": admm.total_cycles,
            "admm_pcg_iterations": admm.pcg_iterations,
            "pdqp_cycles": pdqp.total_cycles,
            "pdqp_converged": bool(pdqp.converged),
            "pdqp_restarts": pdqp.restarts,
            "speedup": round(admm.total_cycles
                             / max(pdqp.total_cycles, 1), 2),
            "auto_choice": picked,
            "auto_cycles": auto_cycles,
        })

    print_rows("PDQP vs ADMM (simulated accelerator cycles)", rows)

    # Claim 1: PDQP wins outright where auto sends work to it.
    pdqp_rows = [r for r in rows if r["auto_choice"] == "pdqp"]
    assert pdqp_rows, "no pdqp-favored case measured"
    for row in pdqp_rows:
        assert row["pdqp_converged"], row
        assert row["speedup"] >= PDQP_SPEEDUP_FLOOR, row
    pdqp_geomean = float(np.exp(np.mean(
        [np.log(r["speedup"]) for r in pdqp_rows])))
    assert pdqp_geomean >= PDQP_GEOMEAN_FLOOR, pdqp_geomean

    # Claim 2: auto never materially loses to always-ADMM.
    auto_vs_admm = float(np.exp(np.mean(
        [np.log(r["auto_cycles"] / r["admm_cycles"]) for r in rows])))
    assert auto_vs_admm <= AUTO_TOLERANCE, auto_vs_admm

    payload = {
        "pdqp_speedup_floor": PDQP_SPEEDUP_FLOOR,
        "pdqp_geomean_floor": PDQP_GEOMEAN_FLOOR,
        "auto_tolerance": AUTO_TOLERANCE,
        "bench_scale": scale,
        "cases": rows,
        "pdqp_subset_geomean_speedup": round(pdqp_geomean, 2),
        "auto_vs_always_admm_geomean": round(auto_vs_admm, 3),
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
