"""Fleet routing and autoscaling economics on a skewed workload.

Two claims behind the fleet layer, both on a deterministic
two-structure stream (Zipf-skewed popularity, closed-loop arrivals,
fixed seed):

* **Routing**: placing each request on the node whose frozen
  architecture best matches its structure (the time-domain match
  score) beats structure-blind round-robin on η-weighted throughput
  and p95 latency — the multi-instance version of the paper's
  customization argument.
* **Autoscaling**: starting from a fleet pinned entirely to the
  popular structure's architecture, the mismatch traffic of the
  unpopular structure pays for a dedicated build, and once it comes
  online the fleet converges to routing (nearly) everything to a
  matching architecture.

The combined results are written to ``fleet_report.json`` (CI uploads
it as an artifact).
"""

import json
import pathlib

from conftest import print_rows

from repro.fleet import Autoscaler, FleetService
from repro.fleet.__main__ import build_workload
from repro.solver import OSQPSettings

SETTINGS = OSQPSettings(eps_abs=1e-3, eps_rel=1e-3, max_iter=4000)
FAMILIES = ["control", "lasso"]
STRUCTURES = 2
REQUESTS = 48
CLIENTS = 4
SEED = 0

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "fleet_report.json"


def _save_report(key: str, payload: dict) -> None:
    """Merge one bench's reports into the shared JSON artifact."""
    merged = {}
    if REPORT_PATH.exists():
        merged = json.loads(REPORT_PATH.read_text())
    merged[key] = payload
    REPORT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True))


def skewed_stream(seed: int = SEED, skew: float = 1.5):
    return build_workload(FAMILIES, STRUCTURES, REQUESTS, 1.0, skew,
                          seed)


def test_fleet_match_routing_beats_round_robin(benchmark):
    templates, stream = skewed_stream()

    def replay_all():
        reports = {}
        for policy in ("match", "least-loaded", "round-robin"):
            flt = FleetService(policy=policy, settings=SETTINGS,
                               solve_mode="calibrated", seed=SEED)
            for template in templates:
                flt.commission(template)
            flt.replay_closed(stream, clients=CLIENTS)
            reports[policy] = flt.fleet_report()
        return reports

    reports = benchmark.pedantic(replay_all, iterations=1, rounds=1)
    rows = [{
        "policy": policy,
        "eta_thr_per_s": rep["eta_weighted_throughput"],
        "p50_ms": 1e3 * rep["latency_seconds"]["p50"],
        "p95_ms": 1e3 * rep["latency_seconds"]["p95"],
        "matched_pct": 100.0 * rep["matched_fraction"],
        "makespan_ms": 1e3 * rep["makespan_seconds"],
    } for policy, rep in reports.items()]
    print_rows("Fleet routing: skewed two-structure workload", rows)
    _save_report("routing", reports)

    match, rr = reports["match"], reports["round-robin"]
    for rep in reports.values():
        assert rep["requests"] == REQUESTS
        assert rep["converged"] == REQUESTS - rep["shed"]
    # Structure-aware placement wins the figure of merit outright...
    assert match["eta_weighted_throughput"] > \
        rr["eta_weighted_throughput"]
    # ...and the latency tail, on the very same stream.
    assert match["latency_seconds"]["p95"] < rr["latency_seconds"]["p95"]
    # It does so by actually routing to matching architectures.
    assert match["matched_fraction"] > rr["matched_fraction"]


def test_fleet_autoscaling_converges_to_matching_arch(benchmark):
    # Milder skew so the unpopular structure has enough traffic to pay
    # for its build within the replay.
    templates, stream = skewed_stream(skew=1.2)

    def replay():
        scaler = Autoscaler(build_cost_cycles=5e4, build_seconds=1e-3,
                            max_nodes=4)
        # The whole initial fleet is pinned to the *popular* arch; the
        # unpopular structure starts out 100% mismatched.
        flt = FleetService(policy="match", settings=SETTINGS,
                           solve_mode="calibrated", autoscaler=scaler,
                           queue_weight=0.0, seed=SEED)
        flt.commission(templates[0])
        flt.commission(templates[0])
        flt.replay_closed(stream, clients=CLIENTS)
        return flt.fleet_report()

    report = benchmark.pedantic(replay, iterations=1, rounds=1)
    print_rows("Fleet autoscaling: mismatch traffic pays for a build", [{
        "requests": report["requests"],
        "builds": len(report["builds"]),
        "matched_pct": 100.0 * report["matched_fraction"],
        "trailing_matched_pct":
            100.0 * report["matched_fraction_trailing"],
        "eta_mean": report["eta"]["mean"],
    }])
    _save_report("autoscale", report)

    assert report["converged"] == report["requests"]
    # The autoscaler commissioned at least one node beyond the two the
    # fleet started with...
    assert len(report["builds"]) >= 3
    # ...and after it comes online the fleet routes >= 90% of the
    # trailing half of the stream to a matching architecture.
    assert report["matched_fraction_trailing"] >= 0.9
