"""Batched lockstep execution vs per-request compiled solves.

``repro.batch`` runs B same-structure instances through one instruction
stream over batched buffers — the serving layer's answer to a stream of
same-fingerprint requests. The contract mirrors the compiled backend's:
*same bits per lane, per-lane cycle counts, much higher request
throughput*. This benchmark solves a same-fingerprint stream of B
perturbed instances twice — once per request through the compiled
accelerator, once as a single batched run (construction included) —
asserts bitwise-identical lane results, asserts >= 5x request
throughput on the compute-dominated case, and writes
``BENCH_BATCH.json`` at the repo root for the perf trajectory.

Respects ``REPRO_BENCH_COUNT`` / ``REPRO_BENCH_SCALE`` (see conftest).
"""

import json
import pathlib
import time

import numpy as np

from conftest import bench_count, bench_scale, print_rows

from repro.batch import BatchAccelerator
from repro.customization import customize_problem
from repro.hw.accelerator import RSQPAccelerator
from repro.problems import generate, perturb_numeric
from repro.solver import OSQPSettings

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_BATCH.json"

#: (family, size): one compute-dominated case (many ADMM/PCG
#: iterations amortize per-instruction dispatch) and one memory-bound
#: case kept honest in the report. Sizes scale with REPRO_BENCH_SCALE.
CASES = [("eqqp", 40), ("control", 8)]

#: The >= 5x floor applies to compute-dominated cases; memory-bound
#: streams batch for latency hiding, not raw arithmetic throughput.
COMPUTE_DOMINATED = ("eqqp",)

BATCH = 32
SPEEDUP_FLOOR = 5.0


def _stream(family, size, batch):
    """Same-fingerprint stream: one template plus perturbed variants."""
    template = generate(family, size, seed=0)
    return [template] + [perturb_numeric(template, seed=s)
                         for s in range(1, batch)]


def test_batch_throughput(benchmark):
    scale = bench_scale()
    count = max(1, min(bench_count(), len(CASES)))
    cases = [(fam, max(4, int(size * scale)))
             for fam, size in CASES[:count]]
    covered = {fam for fam, _ in cases}
    for fam in COMPUTE_DOMINATED:
        if fam not in covered:
            cases.append((fam, max(4, int(dict(CASES)[fam] * scale))))

    settings = OSQPSettings()
    rows = []
    for family, size in cases:
        probs = _stream(family, size, BATCH)
        cust = customize_problem(probs[0], 8)
        compiled = RSQPAccelerator(probs[0], customization=cust,
                                   settings=settings).compiled

        # Warm up both paths: C chunk compilation amortizes across a
        # serving-style stream, exactly like the cached artifact does.
        RSQPAccelerator(probs[0], customization=cust, settings=settings,
                        compiled=compiled).run()
        BatchAccelerator(probs[:2], cust, settings,
                         compiled=compiled).run()

        t0 = time.perf_counter()
        solo_results = []
        for prob in probs:
            acc = RSQPAccelerator(prob, customization=cust,
                                  settings=settings, compiled=compiled)
            solo_results.append(acc.run())
        solo_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        bacc = BatchAccelerator(probs, cust, settings, compiled=compiled)
        bres = bacc.run()
        batch_s = time.perf_counter() - t0

        # The contract: every lane bitwise equals its solo solve.
        assert bres.lane_errors == [None] * BATCH
        for lane, (solo, res) in enumerate(zip(solo_results,
                                               bres.results)):
            assert solo.x.tobytes() == res.x.tobytes(), (family, lane)
            assert solo.y.tobytes() == res.y.tobytes(), (family, lane)
            assert solo.z.tobytes() == res.z.tobytes(), (family, lane)
            assert solo.total_cycles == res.total_cycles, (family, lane)
            assert solo.admm_iterations == res.admm_iterations

        rows.append({
            "family": family, "size": size, "batch": BATCH,
            "per_request_ms": round(solo_s * 1e3, 3),
            "batched_ms": round(batch_s * 1e3, 3),
            "request_throughput_x": round(solo_s / batch_s, 2),
            "wall_cycles": bres.wall_cycles,
            "cycles_per_instance": round(bres.cycles_per_instance, 1),
            "lockstep_speedup": round(bres.lockstep_speedup, 2),
            "compute_dominated": family in COMPUTE_DOMINATED,
        })

    print_rows("Batched lockstep: request throughput", rows)

    floor_rows = [r for r in rows if r["compute_dominated"]]
    assert floor_rows, "no compute-dominated case measured"
    for row in floor_rows:
        assert row["request_throughput_x"] >= SPEEDUP_FLOOR, row
    assert all(r["request_throughput_x"] > 1.0 for r in rows)
    # Lockstep keeps lanes converging independently: the virtual fleet
    # always retires more per-lane cycles than it spends wall cycles.
    assert all(r["lockstep_speedup"] > 1.0 for r in rows)

    # Stable trend number: the hot batched run of the first
    # compute-dominated case (construction included, like serving).
    family, size = floor_rows[0]["family"], floor_rows[0]["size"]
    probs = _stream(family, size, BATCH)
    cust = customize_problem(probs[0], 8)
    compiled = RSQPAccelerator(probs[0], customization=cust,
                               settings=settings).compiled
    BatchAccelerator(probs[:2], cust, settings, compiled=compiled).run()

    def hot_batch():
        return BatchAccelerator(probs, cust, settings,
                                compiled=compiled).run()
    benchmark(hot_batch)

    payload = {
        "batch": BATCH,
        "speedup_floor": SPEEDUP_FLOOR,
        "compute_dominated_families": list(COMPUTE_DOMINATED),
        "bench_count": count,
        "bench_scale": scale,
        "cases": rows,
        "min_compute_dominated_throughput_x": min(
            r["request_throughput_x"] for r in floor_rows),
        "geomean_throughput_x": round(float(np.exp(np.mean(
            [np.log(r["request_throughput_x"]) for r in rows]))), 2),
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
