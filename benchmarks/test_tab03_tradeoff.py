"""Table 3: microarchitectural performance/area trade-off.

Evaluates the paper's 11 architecture candidates on an svm instance of
~20k non-zeros (paper: 20 616), reporting f_max, delta-eta, SpMV rate
and DSP/FF/LUT. Paper shape: bigger C and |S| buy cycles but cost area
and clock; 64{8d4e1g} wins throughput, 64{64a4e1g} has the best eta but
the worst clock.
"""

from conftest import print_rows

from repro.experiments import TABLE3_CANDIDATES, table3_tradeoff
from repro.problems import generate


def test_tab03_tradeoff(benchmark):
    problem = generate("svm", 240, seed=0)  # ~20k nnz, like the paper's

    rows = benchmark.pedantic(table3_tradeoff, args=(problem,),
                              iterations=1, rounds=1)
    print_rows(f"Table 3: trade-off on {problem.name} "
               f"(nnz={problem.nnz})", rows)
    assert len(rows) == len(TABLE3_CANDIDATES)
    by_name = {row["architecture"]: row for row in rows}

    # Baseline has zero delta-eta by definition.
    assert abs(by_name["16{e}"]["delta_eta"]) < 1e-12
    # Wider datapaths use proportionally more DSPs (5 per lane).
    assert by_name["64{4e1g}"]["dsp"] == 4 * by_name["16{e}"]["dsp"]
    # The paper's frequency cliff: 64{64a4e1g} clocks lowest.
    fmaxes = {name: row["fmax_mhz"] for name, row in by_name.items()}
    assert fmaxes["64{64a4e1g}"] == min(fmaxes.values())
    # Customization at fixed C raises eta.
    assert by_name["16{16a1e}"]["delta_eta"] > 0.0
    # Customized designs beat their own-C baseline in SpMV rate.
    assert (by_name["16{16a1e}"]["spmv_per_us"]
            > by_name["16{e}"]["spmv_per_us"])
    assert (by_name["64{8d4e1g}"]["spmv_per_us"]
            > by_name["64{4e1g}"]["spmv_per_us"] * 0.95)
