"""Shared fixtures for the benchmark harness.

Every figure/table of the paper's evaluation section has a bench module
here. The expensive part — solving the suite and customizing every
problem — runs once per session and is shared.

Environment knobs:

* ``REPRO_BENCH_COUNT`` — problems per family (default 3; the paper's
  full suite is 20, i.e. 120 problems).
* ``REPRO_BENCH_SCALE`` — multiplier on the largest instance sizes.
"""

import os

import pytest

from repro.experiments import run_suite


def bench_count() -> int:
    return int(os.environ.get("REPRO_BENCH_COUNT", "3"))


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def suite_records():
    """One pass of the experiment runner over the (reduced) suite."""
    return run_suite(count=bench_count(), scale=bench_scale())


def print_rows(title, rows, columns=None):
    from repro.experiments import format_table
    print()
    print(format_table(rows, columns=columns, title=title))
