"""Ablation: the structure-count budget |S|_target (paper Problem 4).

The paper caps |S| because every structure adds connections and routing
logic. Sweeping the budget shows diminishing cycle returns against
monotonically growing area — the trade-off that motivates the cap.
"""

from conftest import print_rows

from repro.customization import customize_problem
from repro.hw import estimate_resources, fmax_mhz
from repro.problems import generate


def test_structure_budget_sweep(benchmark):
    problem = generate("control", 16, seed=0)

    def sweep():
        rows = []
        for budget in range(0, 7):
            custom = customize_problem(problem, 16,
                                       max_structures=budget)
            arch = custom.architecture
            res = estimate_resources(arch)
            rows.append({
                "budget": budget,
                "architecture": str(arch),
                "eta": custom.eta,
                "total_ep": custom.total_ep,
                "fmax_mhz": fmax_mhz(arch),
                "lut": res.lut,
            })
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print_rows("Ablation: |S|_target budget sweep (control problem)", rows)

    etas = [row["eta"] for row in rows]
    luts = [row["lut"] for row in rows]
    # eta never degrades with a bigger budget ...
    assert all(b >= a - 1e-9 for a, b in zip(etas, etas[1:]))
    # ... but area grows once structures are added.
    assert luts[-1] >= luts[0]
    # Most of the gain arrives with the first couple of structures
    # (diminishing returns justify the paper's small |S|).
    gain_first_two = etas[2] - etas[0]
    gain_rest = etas[-1] - etas[2]
    assert gain_first_two >= gain_rest
