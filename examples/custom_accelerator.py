"""The full problem-specific hardware generation flow (paper Figure 6).

Takes an SVM problem, walks every stage the paper describes —

1. sparsity-string encoding of P, A and A' (Figure 2),
2. LZW-driven structure search minimizing E_p (Problem 4),
3. First-Fit CVB compression minimizing E_c (Problem 5),
4. HLS code generation (Figures 4/5), and
5. the 'bitstream build' boundary: modeled f_max / resources / power —

and writes the generated design directory.

Run:  python examples/custom_accelerator.py
"""

from pathlib import Path

from repro.codegen import generate_hardware
from repro.customization import baseline_customization, customize_problem
from repro.encoding import encode_matrix
from repro.problems import generate_svm

C = 16
OUT_DIR = Path(__file__).resolve().parent / "generated_design"


def main():
    problem = generate_svm(40, seed=0)
    print(f"problem: {problem.name}  n={problem.n} m={problem.m} "
          f"nnz={problem.nnz}\n")

    # Stage 1: sparsity-string encoding.
    for name, matrix in [("P", problem.P), ("A", problem.A),
                         ("At", problem.A.transpose())]:
        enc = encode_matrix(matrix, C)
        preview = enc.string[:60] + ("..." if len(enc.string) > 60 else "")
        print(f"encoding[{name}] ({len(enc.string)} chars): {preview}")
        print(f"  histogram: {enc.histogram()}")

    # Stages 2+3: E_p / E_c optimization.
    base = baseline_customization(problem, C)
    custom = customize_problem(problem, C)
    print(f"\nbaseline  eta = {base.eta:.3f}")
    print(custom.summary())
    search = custom.search
    print(f"search: {search.evaluations} schedule evaluations, "
          f"{search.baseline_cycles} -> {search.cycles} SpMV cycles")

    # Stages 4+5: HLS emission and the modeled implementation results.
    design = generate_hardware(problem, C, customization=custom)
    out = design.write_to(OUT_DIR)
    print(f"\ngenerated design written to {out}:")
    for filename in sorted(design.files):
        size = len(design.files[filename])
        print(f"  {filename}  ({size} bytes)")
    manifest = design.manifest
    print(f"\nmodeled implementation ('bitstream build' stand-in):")
    print(f"  f_max      : {manifest['fmax_mhz']:.0f} MHz")
    print(f"  resources  : {manifest['resources']}")
    print(f"  power      : {manifest['power_watts']:.1f} W")
    print(f"  fits U50   : {manifest['fits_u50']}")


if __name__ == "__main__":
    main()
