"""Regularization path for the lasso, reusing one solver structure.

Data assimilation (least-squares/lasso/ridge) is one of the paper's six
benchmark domains. Sweeping the regularization weight lambda changes
only the linear cost q — the matrices (and thus the sparsity structure
any customized accelerator was built for) are untouched — so the sweep
warm-starts each solve from the previous solution.

Run:  python examples/lasso_path.py
"""

import numpy as np

from repro.problems import generate_lasso
from repro.solver import OSQPSettings, OSQPSolver

N_FEATURES = 30
N_LAMBDAS = 10


def main():
    base = generate_lasso(N_FEATURES, seed=1)
    n = N_FEATURES
    m = 2 * N_FEATURES
    # The generator sets q = [0, 0, lambda * 1]; recover its lambda.
    lam_max = float(base.q[n + m:].max())
    lambdas = np.geomspace(lam_max, lam_max / 100.0, N_LAMBDAS)
    settings = OSQPSettings(eps_abs=1e-5, eps_rel=1e-5, max_iter=6000)

    print(f"lasso: {n} features, {m} samples, nnz={base.nnz}")
    print(f"{'lambda':>10s} {'nonzeros':>9s} {'obj':>12s} {'iters':>6s}")
    prev = None
    for lam in lambdas:
        q = base.q.copy()
        q[n + m:] = lam
        problem = type(base)(P=base.P, q=q, A=base.A, l=base.l, u=base.u,
                             name=base.name)
        solver = OSQPSolver(problem, settings)
        if prev is not None:
            solver.warm_start(x=prev.x, y=prev.y)
        result = solver.solve()
        assert result.status.is_optimal, result.status
        coef = result.x[:n]
        support = int(np.sum(np.abs(coef) > 1e-3))
        print(f"{lam:10.4f} {support:9d} {result.info.obj_val:12.5f} "
              f"{result.info.iterations:6d}")
        prev = result

    print("\nsupport grows as lambda shrinks - the classic lasso path.")


if __name__ == "__main__":
    main()
