"""Regularization path for the lasso on the RSQP solver service.

Data assimilation (least-squares/lasso/ridge) is one of the paper's six
benchmark domains. Sweeping the regularization weight lambda changes
only the linear cost q — the matrices (and thus the sparsity structure
the customized accelerator was built for) are untouched — which is the
ideal workload for a persistent :class:`repro.serving.SolverSession`:
the architecture is built once when the session opens, and every point
on the path is a ``session.update(q=...)`` + ``session.resolve()`` on
the resident accelerator. Each solve warm-starts the primal from the
previous solution and the per-point latency is printed next to the
path; the measured amortization follows at the end.

Run:  python examples/lasso_path.py
"""

import numpy as np

from repro.problems import generate_lasso
from repro.serving import SolverService
from repro.solver import OSQPSettings

N_FEATURES = 30
N_LAMBDAS = 10


def main():
    base = generate_lasso(N_FEATURES, seed=1)
    n = N_FEATURES
    m = 2 * N_FEATURES
    # The generator sets q = [0, 0, lambda * 1]; recover its lambda.
    lam_max = float(base.q[n + m:].max())
    lambdas = np.geomspace(lam_max, lam_max / 100.0, N_LAMBDAS)
    settings = OSQPSettings(eps_abs=1e-5, eps_rel=1e-5, max_iter=10000)

    print(f"lasso: {n} features, {m} samples, nnz={base.nnz}")
    print(f"{'lambda':>10s} {'nonzeros':>9s} {'obj':>12s} {'iters':>6s} "
          f"{'ms':>7s}")
    prev = None
    with SolverService(settings=settings, workers=1,
                       mode="serial") as service:
        # carry_state=False: each lambda is a different QP, not a
        # drifted one, so start every point from the cold penalty.
        with service.open_session(base,
                                  carry_state=False) as session:
            for lam in lambdas:
                q = base.q.copy()
                q[n + m:] = lam
                session.update(q=q)
                # Warm-start the primal only: the duals rescale with
                # lambda, and a stale y misleads the card's
                # host-driven rho adaptation.
                warm = (prev.x, None) if prev is not None else None
                result = session.resolve(warm_start=warm)
                assert result.converged, f"lambda={lam} did not converge"
                coef = result.x[:n]
                support = int(np.sum(np.abs(coef) > 1e-3))
                obj = session.problem.objective(result.x)
                print(f"{lam:10.4f} {support:9d} {obj:12.5f} "
                      f"{result.record.admm_iterations:6d} "
                      f"{result.record.solve_seconds * 1e3:7.2f}")
                prev = result

        print("\nsupport grows as lambda shrinks - the classic lasso path.")
        print("\nOne resident session served the whole path:")
        print(service.amortization_report())


if __name__ == "__main__":
    main()
