"""Regularization path for the lasso on the RSQP solver service.

Data assimilation (least-squares/lasso/ridge) is one of the paper's six
benchmark domains. Sweeping the regularization weight lambda changes
only the linear cost q — the matrices (and thus the sparsity structure
the customized accelerator was built for) are untouched — so every
point on the path reuses the architecture the first solve built. The
sweep warm-starts each solve from the previous solution and prints the
measured amortization at the end.

Run:  python examples/lasso_path.py
"""

import numpy as np

from repro.problems import generate_lasso
from repro.serving import SolverService
from repro.solver import OSQPSettings

N_FEATURES = 30
N_LAMBDAS = 10


def main():
    base = generate_lasso(N_FEATURES, seed=1)
    n = N_FEATURES
    m = 2 * N_FEATURES
    # The generator sets q = [0, 0, lambda * 1]; recover its lambda.
    lam_max = float(base.q[n + m:].max())
    lambdas = np.geomspace(lam_max, lam_max / 100.0, N_LAMBDAS)
    settings = OSQPSettings(eps_abs=1e-5, eps_rel=1e-5, max_iter=10000)

    print(f"lasso: {n} features, {m} samples, nnz={base.nnz}")
    print(f"{'lambda':>10s} {'nonzeros':>9s} {'obj':>12s} {'iters':>6s} "
          f"{'arch':>6s}")
    prev = None
    with SolverService(settings=settings, workers=1,
                       mode="serial") as service:
        for lam in lambdas:
            q = base.q.copy()
            q[n + m:] = lam
            problem = type(base)(P=base.P, q=q, A=base.A, l=base.l,
                                 u=base.u, name=base.name)
            # Warm-start the primal only: the duals rescale with lambda,
            # and a stale y misleads the card's host-driven rho adaptation.
            warm = (prev.x, None) if prev is not None else None
            result = service.solve(problem, warm_start=warm)
            assert result.converged, f"lambda={lam} did not converge"
            coef = result.x[:n]
            support = int(np.sum(np.abs(coef) > 1e-3))
            obj = problem.objective(result.x)
            tier = "reuse" if result.record.cache_hit else "build"
            print(f"{lam:10.4f} {support:9d} {obj:12.5f} "
                  f"{result.record.admm_iterations:6d} {tier:>6s}")
            prev = result

        print("\nsupport grows as lambda shrinks - the classic lasso path.")
        print("\nOne architecture served the whole path:")
        print(service.amortization_report())


if __name__ == "__main__":
    main()
