"""Algorithm auto-selection: ADMM vs restarted PDHG on one accelerator.

The customized datapath is algorithm-agnostic: the same SpMV schedules
and CVB layouts that run OSQP's ADMM iteration also run the restarted
accelerated PDHG solver (PDQP). Which algorithm is cheaper depends on
the problem's *structure* — ADMM pays for inner PCG sweeps, PDHG pays
in outer first-order iterations — so `repro.solver.choose_algorithm`
inspects the structure and picks per problem (docs/SOLVERS.md).

Run:  python examples/algorithm_selection.py
"""

import numpy as np

from repro.customization import customize_problem
from repro.hw import RSQPAccelerator
from repro.hw.pdqp import PDQPAccelerator
from repro.problems import generate
from repro.serving import SolverService
from repro.solver import choose_algorithm, solve_with, structure_features


def main():
    small = generate("lasso", 10, seed=0)
    large = generate("huber", 60, seed=0)

    # 1. Both reference algorithms solve the same QP to the same point.
    r_admm = solve_with("admm", small)
    r_pdqp = solve_with("pdqp", small)
    dx = float(np.max(np.abs(r_admm.x - r_pdqp.x)))
    print(f"reference agreement on {small.name}: "
          f"admm {r_admm.iterations} iters, "
          f"pdqp {r_pdqp.iterations} iters, max |dx| = {dx:.1e}")
    assert dx < 5e-2

    # 2. The structural policy: small/dense/ill-scaled stays on ADMM,
    #    large sparse well-scaled goes to PDQP.
    print("\nselection policy:")
    for problem in (small, large):
        f = structure_features(problem)
        choice = choose_algorithm(problem)
        print(f"  {problem.name:>10}: n+m={f.n + f.m:<5} "
              f"P density={f.p_density:.3f} "
              f"cond proxy={f.cond_proxy:.1e}  ->  {choice}")
    assert choose_algorithm(small) == "admm"
    assert choose_algorithm(large) == "pdqp"

    # 3. On the accelerator the pick is the measured cycle winner: one
    #    customization, two instruction streams.
    cust = customize_problem(large, 16)
    hw_admm = RSQPAccelerator(large, customization=cust).run()
    hw_pdqp = PDQPAccelerator(large, customization=cust).run()
    assert hw_admm.converged and hw_pdqp.converged
    # Both stop at default tolerances, so compare objectives, not
    # coordinates.
    def objective(x):
        return 0.5 * x @ (large.P @ x) + large.q @ x
    gap = abs(objective(hw_admm.x) - objective(hw_pdqp.x))
    assert gap <= 2e-2 * max(1.0, abs(objective(hw_admm.x)))
    speedup = hw_admm.total_cycles / hw_pdqp.total_cycles
    print(f"\n{large.name} on architecture {cust.architecture}:")
    print(f"  admm : {hw_admm.total_cycles:>10,} cycles "
          f"({hw_admm.pcg_iterations} PCG iterations)")
    print(f"  pdqp : {hw_pdqp.total_cycles:>10,} cycles "
          f"({hw_pdqp.restarts} restarts)")
    print(f"  pdqp speedup: {speedup:.2f}x")
    assert speedup > 1.0

    # 4. The serving layer applies the policy per request structure and
    #    keeps one cached artifact per (structure, algorithm).
    print("\nserving with algorithm='auto':")
    with SolverService(mode="serial", workers=1,
                       algorithm="auto") as service:
        for problem in (small, large):
            res = service.solve(problem)
            assert res.converged
            print(f"  {problem.name:>10}: served by "
                  f"{res.record.algorithm} in "
                  f"{res.record.simulated_cycles:,} cycles "
                  f"(tier={res.record.tier})")
        counters = service.metrics_snapshot()["counters"]
        picks = {k: int(v) for k, v in sorted(counters.items())
                 if k.startswith("serving_algo_selected_")}
        print(f"  selection counters: {picks}")

    print("\nsame accelerator, two algorithms, structure decides.")


if __name__ == "__main__":
    main()
