"""Quickstart: define a QP, solve it, and run it on the simulated RSQP card.

The problem is the paper's canonical form (eq. 1):

    minimize    1/2 x' P x + q' x
    subject to  l <= A x <= u

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.hw import RSQPAccelerator
from repro.qp import QProblem
from repro.solver import OSQPSettings, solve
from repro.sparse import CSRMatrix


def main():
    # A small portfolio-flavoured QP: 3 assets, budget + long-only.
    p = CSRMatrix.from_dense([
        [0.10, 0.02, 0.00],
        [0.02, 0.08, 0.01],
        [0.00, 0.01, 0.12],
    ])
    q = np.array([-0.05, -0.04, -0.06])  # negated expected returns
    a = CSRMatrix.from_dense([
        [1.0, 1.0, 1.0],   # budget: sum x = 1
        [1.0, 0.0, 0.0],   # x >= 0 (long only)
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ])
    l = np.array([1.0, 0.0, 0.0, 0.0])
    u = np.array([1.0, np.inf, np.inf, np.inf])
    problem = QProblem(P=p, q=q, A=a, l=l, u=u, name="quickstart")

    # 1. Software solve (the reference OSQP implementation).
    result = solve(problem, OSQPSettings(eps_abs=1e-6, eps_rel=1e-6,
                                         polish=True))
    print(f"status     : {result.status.value}")
    print(f"allocation : {np.round(result.x, 4)}")
    print(f"objective  : {result.info.obj_val:.6f}")
    print(f"iterations : {result.info.iterations} "
          f"(PCG total {result.info.pcg_iterations})")

    # 2. The same problem on the simulated RSQP accelerator with a
    #    problem-specific architecture.
    accelerator = RSQPAccelerator(problem)
    hw = accelerator.run()
    print(f"\naccelerator architecture : "
          f"{accelerator.customization.architecture}")
    print(f"match score eta          : "
          f"{accelerator.customization.eta:.3f}")
    print(f"accelerator allocation   : {np.round(hw.x, 4)}")
    print(f"cycles / f_max / time    : {hw.total_cycles} cycles @ "
          f"{hw.fmax_mhz:.0f} MHz = {hw.solve_seconds * 1e6:.1f} us")
    print(f"board power              : {hw.power_watts:.1f} W")

    assert result.status.is_optimal
    assert np.allclose(hw.x, result.x, atol=1e-2)
    print("\nsoftware and simulated hardware agree.")


if __name__ == "__main__":
    main()
