"""Portfolio backtesting: amortizing the hardware generation cost.

The paper motivates problem-specific hardware with backtesting: up to
120 000 QPs with the *same sparsity structure* but different parameters
(returns, risk estimates) must be solved over a historical window, so a
2-5 h bitstream build is amortized across hours of solves.

This example customizes an architecture once for a portfolio problem
family, then sweeps a sequence of rebalancing dates: each date updates
mu (expected returns) and the factor loadings' values — never the
sparsity pattern — and solves on the simulated accelerator.

Run:  python examples/portfolio_backtest.py
"""

import numpy as np

from repro.customization import customize_problem
from repro.hw import RSQPAccelerator
from repro.problems import generate_portfolio
from repro.qp import QProblem
from repro.solver import OSQPSettings

N_ASSETS = 60
N_REBALANCES = 12
CAD_BUILD_HOURS = 3.0  # the paper's 2-5 h vendor build, amortized


def rebalance_instance(base: QProblem, rng) -> QProblem:
    """New market data, identical sparsity: scale values, keep pattern."""
    p = base.P.copy()
    p.data = p.data * (1.0 + 0.05 * rng.standard_normal(p.data.size))
    q = base.q.copy()
    n = N_ASSETS
    q[:n] = -(0.04 + 0.02 * rng.standard_normal(n))  # fresh -mu
    return QProblem(P=(0.5 * (p + p.transpose())), q=q, A=base.A,
                    l=base.l, u=base.u, name=base.name)


def main():
    rng = np.random.default_rng(7)
    base = generate_portfolio(N_ASSETS, seed=0)
    settings = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=4000)

    print(f"portfolio problem: n={base.n}, m={base.m}, nnz={base.nnz}")
    custom = customize_problem(base, 16)
    print(f"customized architecture: {custom.architecture} "
          f"(eta {custom.eta:.3f})\n")

    total_hw_seconds = 0.0
    previous = None
    for step in range(N_REBALANCES):
        instance = rebalance_instance(base, rng)
        acc = RSQPAccelerator(instance, customization=custom,
                              settings=settings)
        if previous is not None:
            acc.warm_start(x=previous.x, y=previous.y)
        result = acc.run()
        previous = result
        weights = result.x[:N_ASSETS]
        total_hw_seconds += result.solve_seconds
        print(f"rebalance {step:2d}: converged={result.converged} "
              f"top holding {weights.argmax()} "
              f"({weights.max() * 100:.1f}%)  "
              f"solve {result.solve_seconds * 1e3:.2f} ms")

    print(f"\ntotal accelerator time for {N_REBALANCES} rebalances: "
          f"{total_hw_seconds * 1e3:.1f} ms")
    per_solve = total_hw_seconds / N_REBALANCES
    amortize_solves = CAD_BUILD_HOURS * 3600.0 / per_solve
    print(f"one {CAD_BUILD_HOURS:.0f} h bitstream build amortizes over "
          f"~{amortize_solves:,.0f} same-structure solves "
          f"(the paper's backtests need up to 120,000)")


if __name__ == "__main__":
    main()
