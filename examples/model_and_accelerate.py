"""Modeling-layer workflow: write math, get a customized accelerator.

The paper's vision is CVXPY-level ergonomics backed by problem-specific
hardware. This example states a constrained least-squares problem in the
bundled modeling layer, compiles it to the QP standard form, solves it
in software, customizes an architecture for its sparsity, and runs it on
the simulated RSQP card.

Run:  python examples/model_and_accelerate.py
"""

import numpy as np

from repro.customization import customize_problem
from repro.hw import RSQPAccelerator
from repro.modeling import (Minimize, ModelProblem, Variable, between,
                            dot, sum_squares)
from repro.solver import OSQPSettings


def main():
    rng = np.random.default_rng(11)
    m_data, n = 40, 12
    a = rng.standard_normal((m_data, n)) * (rng.random((m_data, n)) < 0.3)
    x_true = np.clip(rng.standard_normal(n), -0.4, 0.4)
    b = a @ x_true + 0.01 * rng.standard_normal(m_data)

    # Constrained least squares with an l2 'ridge' term:
    #   min ||Ax - b||^2 + 0.1 ||x||^2   s.t. -0.5 <= x <= 0.5, sum x = s
    x = Variable(n, name="x")
    objective = Minimize(sum_squares(a @ x - b) + 0.1 * sum_squares(x))
    constraints = [
        between(-0.5, x, 0.5),
        np.ones((1, n)) @ x == float(x_true.sum()),
    ]
    model = ModelProblem(objective, constraints)

    # 1. Software solve through the modeling layer.
    result = model.solve()
    print(f"software status : {result.status.value}")
    print(f"objective value : {model.value:.6f}")
    print(f"recovery error  : {np.linalg.norm(x.value - x_true):.4f}")

    # 2. Compile once, customize hardware for the compiled sparsity.
    compiled = model.compile()
    qp = compiled.qp
    print(f"\ncompiled QP: n={qp.n} (incl. {compiled.aux_size} aux), "
          f"m={qp.m}, nnz={qp.nnz}")
    custom = customize_problem(qp, 16)
    print(f"customized architecture: {custom.architecture} "
          f"(eta {custom.eta:.3f})")

    # 3. Solve on the simulated accelerator and scatter values back.
    acc = RSQPAccelerator(qp, customization=custom,
                          settings=OSQPSettings(eps_abs=1e-5,
                                                eps_rel=1e-5,
                                                max_iter=4000))
    hw = acc.run()
    compiled.scatter(hw.x)
    print(f"\naccelerator converged : {hw.converged} "
          f"({hw.admm_iterations} ADMM / {hw.pcg_iterations} PCG iters)")
    print(f"accelerator time      : {hw.solve_seconds * 1e3:.2f} ms "
          f"@ {hw.fmax_mhz:.0f} MHz, {hw.power_watts:.1f} W")
    print(f"hw-vs-sw distance     : "
          f"{np.linalg.norm(x.value - x_true):.4f} vs software above")


if __name__ == "__main__":
    main()
