"""Closed-loop model predictive control on the RSQP solver service.

Control engineering is the paper's first motivating domain: an MPC
controller solves a QP with the *same structure* at every sampling
instant — only the measured state changes — which is exactly the
repeated-structure workload RSQP's customization targets.

This example builds a random stable plant and runs the closed loop
through a persistent :class:`repro.serving.SolverSession`: the opening
``open_session`` call pays the full customization flow (architecture
search, scheduling, CVB compression, compilation) once, then every
sampling instant is just ``session.update(l=..., u=...)`` — only the
measured state enters the bounds — followed by ``session.resolve()``
on the resident accelerator: no re-fingerprint, no rebuild, no
re-verification, warm-started from the previous step's solution with
the adapted penalty carried across steps. The per-step wall-clock
latency is printed alongside the control trace, and the measured
amortization at the end.

Run:  python examples/mpc_control.py
"""

import numpy as np

from repro.problems.control import mpc_matrices
from repro.qp import QProblem
from repro.serving import SolverService
from repro.solver import OSQPSettings
from repro.sparse import CSRMatrix, diag, eye, from_blocks

NX, NU, HORIZON = 6, 3, 8
SIM_STEPS = 25
U_LIMIT = 0.6


def build_mpc_qp(a_d, b_d, x0):
    """Condensed-free (sparse) MPC QP over (x_1..x_T, u_0..u_{T-1})."""
    t = HORIZON
    q_cost = diag(np.ones(NX))
    r_cost = diag(0.1 * np.ones(NU))
    blocks = [q_cost] * t + [r_cost] * t
    p = from_blocks([[blocks[i] if i == j else None
                      for j in range(2 * t)] for i in range(2 * t)])
    a_csr, b_csr = CSRMatrix.from_dense(a_d), CSRMatrix.from_dense(b_d)
    grid = []
    for k in range(t):
        row = [None] * (2 * t)
        row[k] = eye(NX)
        if k > 0:
            row[k - 1] = -1.0 * a_csr
        row[t + k] = -1.0 * b_csr
        grid.append(row)
    dynamics = from_blocks(grid)
    bounds = from_blocks([[CSRMatrix.zeros((t * NU, t * NX)),
                           eye(t * NU)]])
    a_full = from_blocks([[dynamics], [bounds]])
    l, u = mpc_bounds(a_d, x0)
    n_var = t * (NX + NU)
    return QProblem(P=p, q=np.zeros(n_var), A=a_full, l=l, u=u,
                    name="mpc"), dynamics


def mpc_bounds(a_d, x0):
    """Only the measured state enters the QP — through the bounds."""
    rhs0 = a_d @ x0
    l = np.concatenate([rhs0, np.zeros((HORIZON - 1) * NX),
                        np.full(HORIZON * NU, -U_LIMIT)])
    u = np.concatenate([rhs0, np.zeros((HORIZON - 1) * NX),
                        np.full(HORIZON * NU, U_LIMIT)])
    return l, u


def main():
    rng = np.random.default_rng(3)
    a_d, b_d = mpc_matrices(NX, NU, rng)
    x = rng.standard_normal(NX) * 2.0
    settings = OSQPSettings(eps_abs=1e-5, eps_rel=1e-5, max_iter=4000)

    print(f"plant: {NX} states, {NU} inputs, horizon {HORIZON}")
    print(f"{'step':>4s} {'|x|':>8s} {'u0':>24s} {'iters':>6s} "
          f"{'ms':>7s}")
    norms = []
    with SolverService(settings=settings, workers=1,
                       mode="serial") as service:
        problem, _ = build_mpc_qp(a_d, b_d, x)
        with service.open_session(problem) as session:
            for step in range(SIM_STEPS):
                if step:
                    l, u = mpc_bounds(a_d, x)
                    session.update(l=l, u=u)
                # warm_start="auto" chains the previous step's (x, y).
                result = session.resolve()
                assert result.converged, f"step {step} did not converge"
                u0 = result.x[HORIZON * NX:HORIZON * NX + NU]
                assert np.all(np.abs(u0) <= U_LIMIT + 1e-4)
                norms.append(np.linalg.norm(x))
                print(f"{step:4d} {norms[-1]:8.4f} "
                      f"{np.round(u0, 3)!s:>24s} "
                      f"{result.record.admm_iterations:6d} "
                      f"{result.record.solve_seconds * 1e3:7.2f}")
                x = a_d @ x + b_d @ u0 + 0.01 * rng.standard_normal(NX)

        print(f"\nstate norm {norms[0]:.3f} -> {norms[-1]:.3f} "
              f"({'regulated' if norms[-1] < 0.5 * norms[0] else 'check plant'})")
        print("\nOne resident session served the whole closed loop:")
        print(service.amortization_report())


if __name__ == "__main__":
    main()
