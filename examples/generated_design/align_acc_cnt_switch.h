// Auto-generated problem-specific routing logic for 16{8b2d1e}.
// Outer switch: output count of the active MAC structure;
// inner switch: current alignment-buffer rotation.
switch (acc_cnt) {
case 8:
	switch (align_ptr){
	case 0:
		align_out[0] << acc_pack.data[0];
		align_out[1] << acc_pack.data[1];
		align_out[2] << acc_pack.data[2];
		align_out[3] << acc_pack.data[3];
		align_out[4] << acc_pack.data[4];
		align_out[5] << acc_pack.data[5];
		align_out[6] << acc_pack.data[6];
		align_out[7] << acc_pack.data[7];
		break;
	case 1:
		align_out[1] << acc_pack.data[0];
		align_out[2] << acc_pack.data[1];
		align_out[3] << acc_pack.data[2];
		align_out[4] << acc_pack.data[3];
		align_out[5] << acc_pack.data[4];
		align_out[6] << acc_pack.data[5];
		align_out[7] << acc_pack.data[6];
		align_out[0] << acc_pack.data[7];
		break;
	case 2:
		align_out[2] << acc_pack.data[0];
		align_out[3] << acc_pack.data[1];
		align_out[4] << acc_pack.data[2];
		align_out[5] << acc_pack.data[3];
		align_out[6] << acc_pack.data[4];
		align_out[7] << acc_pack.data[5];
		align_out[0] << acc_pack.data[6];
		align_out[1] << acc_pack.data[7];
		break;
	case 3:
		align_out[3] << acc_pack.data[0];
		align_out[4] << acc_pack.data[1];
		align_out[5] << acc_pack.data[2];
		align_out[6] << acc_pack.data[3];
		align_out[7] << acc_pack.data[4];
		align_out[0] << acc_pack.data[5];
		align_out[1] << acc_pack.data[6];
		align_out[2] << acc_pack.data[7];
		break;
	case 4:
		align_out[4] << acc_pack.data[0];
		align_out[5] << acc_pack.data[1];
		align_out[6] << acc_pack.data[2];
		align_out[7] << acc_pack.data[3];
		align_out[0] << acc_pack.data[4];
		align_out[1] << acc_pack.data[5];
		align_out[2] << acc_pack.data[6];
		align_out[3] << acc_pack.data[7];
		break;
	case 5:
		align_out[5] << acc_pack.data[0];
		align_out[6] << acc_pack.data[1];
		align_out[7] << acc_pack.data[2];
		align_out[0] << acc_pack.data[3];
		align_out[1] << acc_pack.data[4];
		align_out[2] << acc_pack.data[5];
		align_out[3] << acc_pack.data[6];
		align_out[4] << acc_pack.data[7];
		break;
	case 6:
		align_out[6] << acc_pack.data[0];
		align_out[7] << acc_pack.data[1];
		align_out[0] << acc_pack.data[2];
		align_out[1] << acc_pack.data[3];
		align_out[2] << acc_pack.data[4];
		align_out[3] << acc_pack.data[5];
		align_out[4] << acc_pack.data[6];
		align_out[5] << acc_pack.data[7];
		break;
	case 7:
		align_out[7] << acc_pack.data[0];
		align_out[0] << acc_pack.data[1];
		align_out[1] << acc_pack.data[2];
		align_out[2] << acc_pack.data[3];
		align_out[3] << acc_pack.data[4];
		align_out[4] << acc_pack.data[5];
		align_out[5] << acc_pack.data[6];
		align_out[6] << acc_pack.data[7];
		break;
	}
	break;
case 2:
	switch (align_ptr){
	case 0:
		align_out[0] << acc_pack.data[0];
		align_out[1] << acc_pack.data[1];
		break;
	case 1:
		align_out[1] << acc_pack.data[0];
		align_out[2] << acc_pack.data[1];
		break;
	case 2:
		align_out[2] << acc_pack.data[0];
		align_out[3] << acc_pack.data[1];
		break;
	case 3:
		align_out[3] << acc_pack.data[0];
		align_out[4] << acc_pack.data[1];
		break;
	case 4:
		align_out[4] << acc_pack.data[0];
		align_out[5] << acc_pack.data[1];
		break;
	case 5:
		align_out[5] << acc_pack.data[0];
		align_out[6] << acc_pack.data[1];
		break;
	case 6:
		align_out[6] << acc_pack.data[0];
		align_out[7] << acc_pack.data[1];
		break;
	case 7:
		align_out[7] << acc_pack.data[0];
		align_out[0] << acc_pack.data[1];
		break;
	}
	break;
case 1:
	switch (align_ptr){
	case 0:
		align_out[0] << acc_pack.data[0];
		break;
	case 1:
		align_out[1] << acc_pack.data[0];
		break;
	case 2:
		align_out[2] << acc_pack.data[0];
		break;
	case 3:
		align_out[3] << acc_pack.data[0];
		break;
	case 4:
		align_out[4] << acc_pack.data[0];
		break;
	case 5:
		align_out[5] << acc_pack.data[0];
		break;
	case 6:
		align_out[6] << acc_pack.data[0];
		break;
	case 7:
		align_out[7] << acc_pack.data[0];
		break;
	}
	break;
}
align_ptr = (align_ptr + acc_cnt) % 8;
