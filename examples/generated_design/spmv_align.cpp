// Auto-generated for architecture 16{8b2d1e}.
void spmv_align(int align_cnt,
                data_stream align_out[ACC_PACK_NUM],
                cnt_pack_stream &acc_cnt_in,
                data_stream &acc_complete_in,
                spmv_pack_stream &spmv_pack_in)
{
    ap_uint<ALIGN_PTR_BITWIDTH> align_ptr = 0;
align_loop:
    for (int loc = 0; loc < align_cnt; loc++)
    {
#pragma HLS pipeline II = 1
        u16_t acc_cnt = acc_cnt_in.read();
        spmv_pack_t acc_pack;
        if (acc_cnt == CNT_AS_FADD_FLAG) {
            acc_pack.data[0] = acc_complete_in.read();
            acc_cnt = 1;
        }
        else {
            acc_pack = spmv_pack_in.read();
        }
#include "align_acc_cnt_switch.h"
    }
}
