"""Sequential Quadratic Programming on the RSQP solver service.

The paper's introduction lists SQP — solving nonlinear programs as a
sequence of QP subproblems — among the domains that motivate a fast,
reusable QP solver: every SQP iteration solves a QP with the *same
sparsity structure* (the Lagrangian Hessian and constraint Jacobian
patterns are fixed), so one customized accelerator serves the entire
nonlinear solve. Here the subproblems run on a persistent
:class:`repro.serving.SolverSession`: the first linearization opens
the session and pays the customization flow once, and every later SQP
iteration pushes the fresh Hessian/gradient/Jacobian values onto the
resident accelerator with ``session.update(q=..., l=..., u=...,
P_data=..., A_data=...)`` — same pattern, new numbers — then
``session.resolve()``. The matrices are stored with every entry
explicit (see ``dense_csr``) so a coincidentally-zero Jacobian entry
at some iterate cannot change the structure the session is bound to.
The measured amortization is printed at the end.

Problem: a smooth constrained program

    minimize    (1 - x0)^2 + 100 (x1 - x0^2)^2      (Rosenbrock)
    subject to  x0^2 + x1^2 <= 2                     (ball)
                x0 + x1 >= 0.5                       (halfspace)

Each SQP step solves the QP linearization with a damped (regularized)
Hessian and a trust-region-style step bound, warm-started from the
previous step's multipliers.

Run:  python examples/sqp_nonlinear.py
"""

import numpy as np

from repro.qp import QProblem
from repro.serving import SolverService
from repro.solver import OSQPSettings
from repro.sparse import CSRMatrix


def objective(x):
    return (1 - x[0]) ** 2 + 100.0 * (x[1] - x[0] ** 2) ** 2


def gradient(x):
    return np.array([
        -2.0 * (1 - x[0]) - 400.0 * x[0] * (x[1] - x[0] ** 2),
        200.0 * (x[1] - x[0] ** 2),
    ])


def hessian(x):
    return np.array([
        [2.0 - 400.0 * (x[1] - 3.0 * x[0] ** 2), -400.0 * x[0]],
        [-400.0 * x[0], 200.0],
    ])


def constraints(x):
    """g(x) with bounds l <= g(x) <= u."""
    g = np.array([x[0] ** 2 + x[1] ** 2, x[0] + x[1]])
    l = np.array([-np.inf, 0.5])
    u = np.array([2.0, np.inf])
    return g, l, u


def jacobian(x):
    return np.array([[2.0 * x[0], 2.0 * x[1]], [1.0, 1.0]])


def dense_csr(mat):
    """CSR with every entry explicit (zeros included).

    The session is bound to one sparsity pattern; storing the full
    dense pattern keeps that pattern independent of the linearization
    point, so ``update(P_data=..., A_data=...)`` is always legal.
    """
    mat = np.ascontiguousarray(mat, dtype=np.float64)
    m, n = mat.shape
    return CSRMatrix((m, n), mat.ravel(),
                     np.tile(np.arange(n, dtype=np.int64), m),
                     np.arange(0, m * n + 1, n, dtype=np.int64))


def sqp_step_data(x, trust=0.5, damping=1e-4):
    """Numeric data of the QP subproblem at linearization point x.

    min 1/2 d'Hd + grad'd  s.t. bounds on g + J d, |d| <= trust.
    """
    h = hessian(x)
    # Damp to positive definiteness (Levenberg style).
    eigs = np.linalg.eigvalsh(h)
    shift = max(0.0, damping - eigs.min())
    h = h + shift * np.eye(2)
    g, l, u = constraints(x)
    jac = jacobian(x)
    a = np.vstack([jac, np.eye(2)])
    lo = np.concatenate([l - g, -trust * np.ones(2)])
    hi = np.concatenate([u - g, trust * np.ones(2)])
    return (h + h.T) / 2, gradient(x), a, lo, hi


def main():
    x = np.array([0.5, 0.0])  # feasible start (a bad start converges to
    # the other KKT vertex of the linearization)
    settings = OSQPSettings(eps_abs=1e-7, eps_rel=1e-7, max_iter=20000)
    y_prev = None
    print(f"{'iter':>4s} {'f(x)':>12s} {'|step|':>10s} {'x':>22s} "
          f"{'ms':>7s}")
    with SolverService(settings=settings, workers=1,
                       mode="serial") as service:
        p0, q0, a0, lo0, hi0 = sqp_step_data(x)
        qp = QProblem(P=dense_csr(p0), q=q0, A=dense_csr(a0),
                      l=lo0, u=hi0, name="sqp_subproblem")
        with service.open_session(qp) as session:
            for it in range(40):
                if it:
                    p, q, a, lo, hi = sqp_step_data(x)
                    session.update(q=q, l=lo, u=hi, P_data=p.ravel(),
                                   A_data=a.ravel())
                warm = (None, y_prev) if y_prev is not None else None
                res = session.resolve(warm_start=warm)
                assert res.converged, \
                    f"SQP subproblem {it} did not converge"
                step = res.x
                y_prev = res.y
                x = x + step
                print(f"{it:4d} {objective(x):12.6f} "
                      f"{np.linalg.norm(step):10.2e} "
                      f"{np.round(x, 5)!s:>22s} "
                      f"{res.record.solve_seconds * 1e3:7.2f}")
                if np.linalg.norm(step) < 1e-7:
                    break

        g, l, u = constraints(x)
        print(f"\nfinal x = {np.round(x, 6)}, f = {objective(x):.8f}")
        print(f"constraints: ball {g[0]:.4f} <= 2, "
              f"halfspace {g[1]:.4f} >= 0.5")
        assert g[0] <= 2.0 + 1e-6 and g[1] >= 0.5 - 1e-6
        # The unconstrained Rosenbrock optimum (1, 1) is feasible here,
        # so SQP should find it.
        assert np.allclose(x, [1.0, 1.0], atol=1e-3)
        print("converged to the constrained optimum.")
        print("\nOne resident session served every SQP iteration:")
        print(service.amortization_report())


if __name__ == "__main__":
    main()
