"""Sequential Quadratic Programming on the RSQP solver service.

The paper's introduction lists SQP — solving nonlinear programs as a
sequence of QP subproblems — among the domains that motivate a fast,
reusable QP solver: every SQP iteration solves a QP with the *same
sparsity structure* (the Lagrangian Hessian and constraint Jacobian
patterns are fixed), so one customized accelerator serves the entire
nonlinear solve. Here the subproblems go through
:class:`repro.serving.SolverService`: the service fingerprints each
QP's structure and reuses the cached architecture, so only the first
subproblem pays the customization flow — the measured amortization is
printed at the end. (The very first linearization at ``x1 = 0`` has a
structurally different Jacobian — a zero entry — so the run builds two
architectures, which the fingerprint keeps honestly apart.)

Problem: a smooth constrained program

    minimize    (1 - x0)^2 + 100 (x1 - x0^2)^2      (Rosenbrock)
    subject to  x0^2 + x1^2 <= 2                     (ball)
                x0 + x1 >= 0.5                       (halfspace)

Each SQP step solves the QP linearization with a damped (regularized)
Hessian and a trust-region-style step bound, warm-started from the
previous step's multipliers.

Run:  python examples/sqp_nonlinear.py
"""

import numpy as np

from repro.qp import QProblem
from repro.serving import SolverService
from repro.solver import OSQPSettings
from repro.sparse import CSRMatrix


def objective(x):
    return (1 - x[0]) ** 2 + 100.0 * (x[1] - x[0] ** 2) ** 2


def gradient(x):
    return np.array([
        -2.0 * (1 - x[0]) - 400.0 * x[0] * (x[1] - x[0] ** 2),
        200.0 * (x[1] - x[0] ** 2),
    ])


def hessian(x):
    return np.array([
        [2.0 - 400.0 * (x[1] - 3.0 * x[0] ** 2), -400.0 * x[0]],
        [-400.0 * x[0], 200.0],
    ])


def constraints(x):
    """g(x) with bounds l <= g(x) <= u."""
    g = np.array([x[0] ** 2 + x[1] ** 2, x[0] + x[1]])
    l = np.array([-np.inf, 0.5])
    u = np.array([2.0, np.inf])
    return g, l, u


def jacobian(x):
    return np.array([[2.0 * x[0], 2.0 * x[1]], [1.0, 1.0]])


def sqp_step_qp(x, trust=0.5, damping=1e-4):
    """QP subproblem: min 1/2 d'Hd + grad'd s.t. bounds on g + J d, |d|<=trust."""
    h = hessian(x)
    # Damp to positive definiteness (Levenberg style).
    eigs = np.linalg.eigvalsh(h)
    shift = max(0.0, damping - eigs.min())
    h = h + shift * np.eye(2)
    g, l, u = constraints(x)
    jac = jacobian(x)
    a = np.vstack([jac, np.eye(2)])
    lo = np.concatenate([l - g, -trust * np.ones(2)])
    hi = np.concatenate([u - g, trust * np.ones(2)])
    return QProblem(P=CSRMatrix.from_dense((h + h.T) / 2),
                    q=gradient(x), A=CSRMatrix.from_dense(a),
                    l=lo, u=hi, name="sqp_subproblem")


def main():
    x = np.array([0.5, 0.0])  # feasible start (a bad start converges to the
    # other KKT vertex of the linearization - see the docstring note)
    settings = OSQPSettings(eps_abs=1e-7, eps_rel=1e-7, max_iter=20000)
    y_prev = None
    print(f"{'iter':>4s} {'f(x)':>12s} {'|step|':>10s} {'x':>22s} "
          f"{'arch':>6s}")
    with SolverService(settings=settings, workers=1,
                       mode="serial") as service:
        for it in range(40):
            qp = sqp_step_qp(x)
            warm = (None, y_prev) if y_prev is not None else None
            res = service.solve(qp, warm_start=warm)
            assert res.converged, f"SQP subproblem {it} did not converge"
            step = res.x
            y_prev = res.y
            x = x + step
            tier = "reuse" if res.record.cache_hit else "build"
            print(f"{it:4d} {objective(x):12.6f} "
                  f"{np.linalg.norm(step):10.2e} "
                  f"{np.round(x, 5)!s:>22s} {tier:>6s}")
            if np.linalg.norm(step) < 1e-7:
                break

        g, l, u = constraints(x)
        print(f"\nfinal x = {np.round(x, 6)}, f = {objective(x):.8f}")
        print(f"constraints: ball {g[0]:.4f} <= 2, "
              f"halfspace {g[1]:.4f} >= 0.5")
        assert g[0] <= 2.0 + 1e-6 and g[1] >= 0.5 - 1e-6
        # The unconstrained Rosenbrock optimum (1, 1) is feasible here,
        # so SQP should find it.
        assert np.allclose(x, [1.0, 1.0], atol=1e-3)
        print("converged to the constrained optimum.")
        print("\nArchitecture reuse across the SQP iterations:")
        print(service.amortization_report())


if __name__ == "__main__":
    main()
