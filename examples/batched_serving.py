"""Batched serving: one lockstep run for a same-structure burst.

A serving deployment sees bursts of structurally identical QPs — the
MPC re-solve tick, a backtest sweep, an SQP inner loop fanning out.
Beyond reusing one cached architecture per structure (amortization,
see portfolio_backtest.py), the service coalesces such a burst into a
*batched lockstep solve*: one compiled instruction stream drives all
instances over batched buffers, so the stream pays instruction
dispatch once instead of once per request — and every lane's answer is
bitwise identical to the solo solve it replaced.

Run:  python examples/batched_serving.py
"""

import time

import numpy as np

from repro.problems import generate_lasso, perturb_numeric
from repro.serving import SolverService
from repro.solver import OSQPSettings

N_FEATURES = 16
BURST = 12

settings = OSQPSettings(eps_abs=1e-4, eps_rel=1e-4, max_iter=2000)
base = generate_lasso(N_FEATURES, seed=0)
burst = [base] + [perturb_numeric(base, seed=s)
                  for s in range(1, BURST)]

# Per-request path: every problem solved on its own (coalesce=False),
# warm after the first request builds the artifact.
with SolverService(settings=settings, workers=1, mode="serial") as svc:
    svc.solve(base)                       # build + cache the artifact
    t0 = time.perf_counter()
    solo = svc.solve_batch(burst, coalesce=False)
    solo_s = time.perf_counter() - t0

# Batched path: the same burst coalesced into one lockstep run.
with SolverService(settings=settings, workers=1, mode="serial",
                   max_batch=BURST) as svc:
    svc.solve(base)
    t0 = time.perf_counter()
    batched = svc.solve_batch(burst)
    batch_s = time.perf_counter() - t0

print(f"burst of {BURST} same-structure lasso QPs "
      f"(n={N_FEATURES} features)")
print(f"  per-request : {solo_s * 1e3:7.1f} ms")
print(f"  batched     : {batch_s * 1e3:7.1f} ms "
      f"({solo_s / batch_s:.1f}x request throughput)")

widths = {r.record.batch_width for r in batched}
print(f"  batch widths: {sorted(widths)} "
      f"(every record carries the lane count it shared a machine with)")

identical = all(
    s.x.tobytes() == b.x.tobytes()
    and s.record.admm_iterations == b.record.admm_iterations
    and s.record.simulated_cycles == b.record.simulated_cycles
    for s, b in zip(solo, batched))
print(f"  per-lane results bitwise identical to solo solves: "
      f"{identical}")
assert identical

iters = [r.record.admm_iterations for r in batched]
print(f"  lanes converged independently: {min(iters)}-{max(iters)} "
      f"ADMM iterations (early lanes freeze, late lanes run on)")
assert np.all([r.converged for r in batched])
